// The deterministic worker pool: chunk coverage, exception propagation,
// concurrent submitters, and — the contract everything rests on — bit
// identity of threaded runs against serial across the driver matrix
// (ranks x backends x overlap), the Nekbone CG solve, and degenerate
// topologies.

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdlib>
#include <stdexcept>
#include <thread>
#include <vector>

#include "comm/runtime.hpp"
#include "core/driver.hpp"
#include "nekbone/nekbone.hpp"
#include "parallel/parallel.hpp"

namespace {

using cmtbone::comm::Comm;
using cmtbone::core::Config;
using cmtbone::core::Driver;
using cmtbone::core::FaceBackend;
using cmtbone::core::Physics;
using cmtbone::parallel::Pool;

// --- pool mechanics ----------------------------------------------------------

TEST(Pool, ForRangeCoversEveryIndexExactlyOnce) {
  Pool pool(3);
  for (std::size_t count : {1u, 7u, 64u, 1000u}) {
    for (std::size_t grain : {1u, 3u, 16u, 2000u}) {
      for (int threads : {1, 2, 4, 9}) {
        std::vector<std::atomic<int>> hits(count);
        for (auto& h : hits) h.store(0);
        pool.for_range(count, grain, threads,
                       [&](std::size_t lo, std::size_t hi) {
                         ASSERT_LT(lo, hi);
                         ASSERT_LE(hi, count);
                         for (std::size_t i = lo; i < hi; ++i) ++hits[i];
                       });
        for (std::size_t i = 0; i < count; ++i) {
          ASSERT_EQ(hits[i].load(), 1)
              << "count=" << count << " grain=" << grain
              << " threads=" << threads << " index=" << i;
        }
      }
    }
  }
}

TEST(Pool, ZeroCountIsANoOp) {
  Pool pool(2);
  bool called = false;
  pool.for_range(0, 4, 4, [&](std::size_t, std::size_t) { called = true; });
  EXPECT_FALSE(called);
  cmtbone::parallel::for_elements(0, 1, 4,
                                  [&](std::size_t, std::size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(Pool, ZeroWorkerPoolRunsEntirelyOnCaller) {
  Pool pool(0);
  EXPECT_EQ(pool.worker_count(), 0);
  std::vector<int> hits(100, 0);
  const auto caller = std::this_thread::get_id();
  pool.for_range(hits.size(), 7, 8, [&](std::size_t lo, std::size_t hi) {
    EXPECT_EQ(std::this_thread::get_id(), caller);
    for (std::size_t i = lo; i < hi; ++i) ++hits[i];
  });
  for (int h : hits) EXPECT_EQ(h, 1);
}

TEST(Pool, ThreadedElementResultsMatchSerialBitwise) {
  // Per-element compute writing disjoint slots: any thread count and any
  // chunking must produce the same bits, because each slot's arithmetic is
  // untouched by the split.
  const std::size_t count = 257;
  auto compute = [](std::size_t i) {
    return std::sin(0.1 * double(i)) * std::sqrt(double(i) + 2.0);
  };
  std::vector<double> serial(count), threaded(count);
  cmtbone::parallel::for_elements(count, 64, 1,
                                  [&](std::size_t lo, std::size_t hi) {
                                    for (std::size_t i = lo; i < hi; ++i)
                                      serial[i] = compute(i);
                                  });
  for (std::size_t grain : {1u, 5u, 50u}) {
    for (int threads : {2, 4}) {
      std::fill(threaded.begin(), threaded.end(), -1.0);
      cmtbone::parallel::for_elements(count, grain, threads,
                                      [&](std::size_t lo, std::size_t hi) {
                                        for (std::size_t i = lo; i < hi; ++i)
                                          threaded[i] = compute(i);
                                      });
      for (std::size_t i = 0; i < count; ++i) {
        ASSERT_EQ(serial[i], threaded[i]) << "grain=" << grain
                                          << " threads=" << threads;
      }
    }
  }
}

TEST(Pool, FirstExceptionRethrownOnSubmitterAndPoolStaysUsable) {
  Pool pool(2);
  EXPECT_THROW(
      pool.for_range(100, 1, 4,
                     [&](std::size_t lo, std::size_t) {
                       if (lo == 42) throw std::runtime_error("chunk 42");
                     }),
      std::runtime_error);
  // The pool must remain fully functional after an unwind.
  std::vector<std::atomic<int>> hits(50);
  for (auto& h : hits) h.store(0);
  pool.for_range(hits.size(), 4, 4, [&](std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i) ++hits[i];
  });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(Pool, ConcurrentSubmittersShareThePoolSafely) {
  // Several "rank" threads with regions in flight at once — the production
  // shape (ranks are std::threads sharing Pool::global()). Every submitter
  // must see its own region complete exactly, regardless of who served it.
  Pool pool(3);
  const int submitters = 6;
  const std::size_t count = 400;
  std::vector<std::vector<int>> hits(submitters, std::vector<int>(count, 0));
  std::vector<std::thread> threads;
  for (int s = 0; s < submitters; ++s) {
    threads.emplace_back([&, s] {
      for (int rep = 0; rep < 20; ++rep) {
        pool.for_range(count, 16, 3, [&, s](std::size_t lo, std::size_t hi) {
          for (std::size_t i = lo; i < hi; ++i) ++hits[s][i];
        });
      }
    });
  }
  for (auto& t : threads) t.join();
  for (int s = 0; s < submitters; ++s) {
    for (std::size_t i = 0; i < count; ++i) {
      ASSERT_EQ(hits[s][i], 20) << "submitter " << s << " index " << i;
    }
  }
}

TEST(Pool, DefaultGrainTilesTheRange) {
  using cmtbone::parallel::default_grain;
  for (std::size_t count : {1u, 2u, 15u, 16u, 100u, 4097u}) {
    for (int threads : {1, 2, 4, 16}) {
      const std::size_t g = default_grain(count, threads);
      ASSERT_GE(g, 1u);
      // Enough chunks for every participating thread.
      const std::size_t nchunks = (count + g - 1) / g;
      EXPECT_GE(nchunks * g, count);
    }
  }
}

TEST(ResolveThreads, PositiveRequestWinsOverEnvironment) {
  setenv("CMTBONE_THREADS_PER_RANK", "7", 1);
  EXPECT_EQ(cmtbone::parallel::resolve_threads(3), 3);
  EXPECT_EQ(cmtbone::parallel::resolve_threads(0), 7);
  unsetenv("CMTBONE_THREADS_PER_RANK");
  EXPECT_EQ(cmtbone::parallel::resolve_threads(0), 1);
  EXPECT_EQ(cmtbone::parallel::resolve_threads(-2), 1);
}

// --- driver: threaded runs bit-identical to serial ---------------------------

using Fields = std::vector<std::vector<double>>;

Config matrix_config(FaceBackend backend, bool overlap, int threads) {
  Config cfg;
  cfg.physics = Physics::kEuler;
  cfg.face_backend = backend;
  cfg.n = 4;
  cfg.ex = cfg.ey = cfg.ez = 3;
  cfg.fixed_dt = 1e-3;
  cfg.use_dssum = true;
  cfg.overlap = overlap;
  cfg.threads_per_rank = threads;
  return cfg;
}

std::vector<Fields> run_sim(int nranks, const Config& cfg, int steps) {
  std::vector<Fields> out(nranks);
  cmtbone::comm::run(nranks, [&](Comm& world) {
    Driver driver(world, cfg);
    driver.initialize(driver.default_ic());
    driver.run(steps);
    Fields f;
    for (int i = 0; i < driver.nfields(); ++i) {
      auto s = driver.field(i);
      f.emplace_back(s.begin(), s.end());
    }
    out[world.rank()] = std::move(f);
  });
  return out;
}

void expect_bitwise_equal(const std::vector<Fields>& a,
                          const std::vector<Fields>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t r = 0; r < a.size(); ++r) {
    ASSERT_EQ(a[r].size(), b[r].size()) << "rank " << r;
    for (std::size_t f = 0; f < a[r].size(); ++f) {
      ASSERT_EQ(a[r][f].size(), b[r][f].size());
      for (std::size_t p = 0; p < a[r][f].size(); ++p) {
        ASSERT_EQ(a[r][f][p], b[r][f][p])
            << "rank " << r << " field " << f << " point " << p;
      }
    }
  }
}

TEST(ThreadedDriver, BitIdenticalAcrossThreadsRanksBackendsOverlap) {
  const int steps = 6;
  for (auto backend : {FaceBackend::kDirect, FaceBackend::kGatherScatter}) {
    for (bool overlap : {false, true}) {
      Config serial = matrix_config(backend, overlap, 1);
      for (int nranks : {1, 2, 4}) {
        auto want = run_sim(nranks, serial, steps);
        for (int threads : {2, 4}) {
          Config cfg = matrix_config(backend, overlap, threads);
          SCOPED_TRACE(testing::Message()
                       << "backend=" << int(backend) << " overlap=" << overlap
                       << " ranks=" << nranks << " threads=" << threads);
          expect_bitwise_equal(want, run_sim(nranks, cfg, steps));
        }
      }
    }
  }
}

TEST(ThreadedDriver, ThreadedMatchesSerialWithDealiasAndParticles) {
  // The serial-only terms (dealias checksum, particle deposition) must stay
  // serial — this run goes wrong if anyone ever threads them naively.
  Config serial = matrix_config(FaceBackend::kDirect, true, 1);
  serial.dealias = true;
  serial.particles_per_rank = 16;
  serial.particle_coupling = 0.05;
  Config threaded = serial;
  threaded.threads_per_rank = 4;
  expect_bitwise_equal(run_sim(2, serial, 6), run_sim(2, threaded, 6));
}

TEST(ThreadedDriver, DegenerateSingleElementTopology) {
  // One element per rank: empty interior class, every face locally mirrored
  // or remote, zero-length pack loops on some plans. Exercises the checked
  // copy paths and the pool's tiny-range budgeting.
  for (int nranks : {1, 2}) {
    Config serial;
    serial.physics = Physics::kEuler;
    serial.n = 3;
    serial.ex = nranks;
    serial.ey = serial.ez = 1;
    serial.px = nranks;
    serial.py = serial.pz = 1;
    serial.fixed_dt = 1e-3;
    serial.threads_per_rank = 1;
    Config threaded = serial;
    threaded.threads_per_rank = 4;
    SCOPED_TRACE(nranks);
    expect_bitwise_equal(run_sim(nranks, serial, 4),
                         run_sim(nranks, threaded, 4));
  }
}

TEST(ThreadedDriver, NonPeriodicBoundaryTopology) {
  Config serial = matrix_config(FaceBackend::kDirect, false, 1);
  serial.periodic = false;
  Config threaded = serial;
  threaded.threads_per_rank = 3;
  expect_bitwise_equal(run_sim(2, serial, 5), run_sim(2, threaded, 5));
}

// --- nekbone: threaded CG bit-identical --------------------------------------

TEST(ThreadedNekbone, CgSolveBitIdenticalToSerial) {
  using cmtbone::nekbone::Nekbone;
  using cmtbone::nekbone::NekboneConfig;
  auto solve = [](int threads) {
    std::vector<std::vector<double>> xs(2);
    std::vector<int> iters(2, -1);
    cmtbone::comm::run(2, [&](Comm& world) {
      NekboneConfig cfg;
      cfg.n = 5;
      cfg.ex = cfg.ey = cfg.ez = 4;
      cfg.threads_per_rank = threads;
      Nekbone nek(world, cfg);
      std::vector<double> x(nek.points(), 0.0), b(nek.points());
      nek.assemble_rhs(
          [](double x0, double y0, double z0) {
            return std::cos(2.0 * M_PI * x0) * std::sin(2.0 * M_PI * y0) +
                   z0;
          },
          std::span<double>(b));
      auto res = nek.solve_cg(std::span<double>(x), b, 50, 1e-10);
      xs[world.rank()] = std::move(x);
      iters[world.rank()] = res.iterations;
    });
    return std::make_pair(xs, iters);
  };
  auto [x1, it1] = solve(1);
  auto [x4, it4] = solve(4);
  EXPECT_EQ(it1, it4);
  ASSERT_EQ(x1.size(), x4.size());
  for (std::size_t r = 0; r < x1.size(); ++r) {
    ASSERT_EQ(x1[r].size(), x4[r].size());
    for (std::size_t i = 0; i < x1[r].size(); ++i) {
      ASSERT_EQ(x1[r][i], x4[r][i]) << "rank " << r << " point " << i;
    }
  }
}

}  // namespace
