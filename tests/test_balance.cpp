// Dynamic load balancing: the repartitioner's pure-decision invariants
// (determinism, bounded moves, never emptying a rank), the v3 checkpoint
// format carrying the ownership map (with v2 backward compatibility), and
// the end-to-end guarantees — a balanced run's fields are bit-identical to
// a static run's across rank counts, overlap modes, thread counts, and
// chaos delay schedules, and a run killed mid-rebalance recovers through a
// v3 checkpoint to the same bits.

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <filesystem>
#include <mutex>
#include <string>
#include <vector>

#include "balance/cost_model.hpp"
#include "balance/rebalancer.hpp"
#include "balance/scenarios.hpp"
#include "chaos/chaos.hpp"
#include "comm/runtime.hpp"
#include "core/driver.hpp"
#include "io/checkpoint.hpp"
#include "mesh/layout.hpp"
#include "resilience/recovery.hpp"

namespace {

namespace fs = std::filesystem;

using cmtbone::balance::ClusterSpec;
using cmtbone::balance::CostMode;
using cmtbone::balance::CostModel;
using cmtbone::balance::CostModelConfig;
using cmtbone::balance::clustered_cloud;
using cmtbone::balance::propose_owner;
using cmtbone::balance::RebalanceConfig;
using cmtbone::balance::RebalancePlan;
using cmtbone::chaos::ChaosEngine;
using cmtbone::chaos::ChaosPolicy;
using cmtbone::comm::Comm;
using cmtbone::core::Config;
using cmtbone::core::Driver;
using cmtbone::mesh::BoxSpec;
using cmtbone::mesh::ElementLayout;

// ---------------------------------------------------------------------------
// Cost model
// ---------------------------------------------------------------------------

TEST(CostModel, ParticleCountSurrogateIsDeterministic) {
  CostModelConfig config;
  config.mode = CostMode::kParticleCount;
  config.particle_weight = 4.0;
  CostModel model(config);
  const std::vector<int> counts = {0, 2, 7};
  const std::vector<double> cost = model.element_costs(counts);
  ASSERT_EQ(cost.size(), 3u);
  EXPECT_DOUBLE_EQ(cost[0], 1.0);
  EXPECT_DOUBLE_EQ(cost[1], 1.0 + 4.0 * 2);
  EXPECT_DOUBLE_EQ(cost[2], 1.0 + 4.0 * 7);
}

TEST(CostModel, MeasuredFallsBackToSurrogateUntilCalibrated) {
  CostModel model;  // kMeasured
  EXPECT_FALSE(model.calibrated());
  const std::vector<int> counts = {1, 3};
  // Uncalibrated: the deterministic surrogate, so the first epoch balances.
  const std::vector<double> fallback = model.element_costs(counts);
  EXPECT_GT(fallback[1], fallback[0]);

  cmtbone::prof::BalanceStats window;
  window.steps = 1;
  window.grid_seconds = 0.10;
  window.particle_seconds = 0.05;
  model.observe(window, /*nel=*/2, /*particles=*/4);
  EXPECT_TRUE(model.calibrated());
  EXPECT_GT(model.grid_unit(), 0.0);
  EXPECT_GE(model.particle_unit(), 0.0);
  const std::vector<double> measured = model.element_costs(counts);
  EXPECT_GT(measured[1], measured[0]);  // particles still cost extra
}

// ---------------------------------------------------------------------------
// Repartitioner decision invariants (pure, no comm)
// ---------------------------------------------------------------------------

BoxSpec row_spec(int ex, int px) {
  BoxSpec spec;
  spec.n = 5;
  spec.ex = ex;
  spec.ey = 1;
  spec.ez = 1;
  spec.px = px;
  spec.py = 1;
  spec.pz = 1;
  return spec;
}

TEST(ProposeOwner, BalancedLoadIsLeftAlone) {
  const BoxSpec spec = row_spec(8, 2);
  const ElementLayout layout = ElementLayout::block(spec, 0);
  const std::vector<double> cost(8, 1.0);
  const RebalancePlan plan = propose_owner(layout, cost, RebalanceConfig{});
  EXPECT_EQ(plan.moves, 0);
  EXPECT_EQ(plan.owner, layout.owner());
  EXPECT_DOUBLE_EQ(plan.imbalance_before, 1.0);
}

TEST(ProposeOwner, SkewImprovesAndRespectsMoveBound) {
  const BoxSpec spec = row_spec(8, 2);
  const ElementLayout layout = ElementLayout::block(spec, 0);
  // Rank 0 (gids 0..3) is ~4x as loaded as rank 1.
  std::vector<double> cost = {4, 4, 4, 4, 1, 1, 1, 1};
  RebalanceConfig config;
  config.max_moves = 1;
  RebalancePlan plan = propose_owner(layout, cost, config);
  EXPECT_EQ(plan.moves, 1);
  EXPECT_LT(plan.imbalance_after, plan.imbalance_before);

  config.max_moves = 8;
  plan = propose_owner(layout, cost, config);
  EXPECT_GE(plan.moves, 1);
  EXPECT_LE(plan.moves, config.max_moves);
  EXPECT_LT(plan.imbalance_after, plan.imbalance_before);
}

TEST(ProposeOwner, IdenticalInputsGiveIdenticalPlans) {
  const BoxSpec spec = row_spec(12, 3);
  const ElementLayout layout = ElementLayout::block(spec, 1);
  std::vector<double> cost(12);
  for (int g = 0; g < 12; ++g) cost[g] = 1.0 + (g % 5) * 2.5;
  const RebalancePlan a = propose_owner(layout, cost, RebalanceConfig{});
  const RebalancePlan b = propose_owner(layout, cost, RebalanceConfig{});
  EXPECT_EQ(a.owner, b.owner);
  EXPECT_EQ(a.moves, b.moves);
}

TEST(ProposeOwner, NeverEmptiesARank) {
  // Rank 0 owns a single, enormously expensive element; greedy refinement
  // must not hand it away and leave the rank with nothing.
  const BoxSpec spec = row_spec(4, 2);
  ElementLayout layout(spec, 0, {0, 1, 1, 1});
  std::vector<double> cost = {100, 1, 1, 1};
  RebalanceConfig config;
  config.max_moves = 16;
  const RebalancePlan plan = propose_owner(layout, cost, config);
  for (int r = 0; r < 2; ++r) {
    int owned = 0;
    for (int o : plan.owner) owned += (o == r);
    EXPECT_GE(owned, 1) << "rank " << r << " was emptied";
  }
}

TEST(ProposeOwner, ThresholdDeadbandSuppressesSmallImbalance) {
  const BoxSpec spec = row_spec(8, 2);
  const ElementLayout layout = ElementLayout::block(spec, 0);
  // 2% imbalance, under the 5% threshold: leave the layout alone.
  std::vector<double> cost = {1.02, 1.02, 1.02, 1.02, 1, 1, 1, 1};
  RebalanceConfig config;
  config.threshold = 1.05;
  const RebalancePlan plan = propose_owner(layout, cost, config);
  EXPECT_EQ(plan.moves, 0);
}

// ---------------------------------------------------------------------------
// Checkpoint v3 format: ownership map roundtrip, v2 backward compatibility
// ---------------------------------------------------------------------------

TEST(CheckpointV3, OwnerMapRoundtripsAndV2StaysV2) {
  namespace io = cmtbone::io;
  io::CheckpointHeader header;
  header.n = 2;
  header.nel = 2;
  header.nfields = 2;
  header.steps = 7;
  header.time = 0.125;
  header.rank = 0;
  const std::size_t points = 2 * 8;  // nel * n^3
  std::vector<double> f0(points), f1(points);
  for (std::size_t i = 0; i < points; ++i) {
    f0[i] = 0.5 + double(i);
    f1[i] = -1.25 * double(i);
  }
  const std::vector<const double*> fields = {f0.data(), f1.data()};
  const std::vector<std::int32_t> owner = {0, 1, 1, 0};

  // v3: a non-empty owner map prefixes the payload.
  const std::vector<std::byte> v3 = io::serialize_checkpoint(
      header, std::span<const double* const>(fields), points,
      std::span<const std::int32_t>(owner));
  std::vector<std::vector<double>> got;
  std::vector<std::int32_t> got_owner;
  const io::CheckpointHeader h3 =
      io::parse_checkpoint(v3, "v3", &got, &got_owner);
  EXPECT_EQ(h3.version, 3u);
  EXPECT_EQ(h3.total_elements, 4);
  EXPECT_EQ(got_owner, owner);
  ASSERT_EQ(got.size(), 2u);
  EXPECT_EQ(0, std::memcmp(got[0].data(), f0.data(), points * 8));
  EXPECT_EQ(0, std::memcmp(got[1].data(), f1.data(), points * 8));

  // No owner map: the historical v2 bytes, which a v3 reader still parses
  // (empty owner out-param = static block partition implied).
  const std::vector<std::byte> v2 = io::serialize_checkpoint(
      header, std::span<const double* const>(fields), points);
  got_owner = {9, 9};  // stale content must be cleared
  const io::CheckpointHeader h2 =
      io::parse_checkpoint(v2, "v2", &got, &got_owner);
  EXPECT_EQ(h2.version, 2u);
  EXPECT_EQ(h2.total_elements, 0);
  EXPECT_TRUE(got_owner.empty());
  EXPECT_EQ(0, std::memcmp(got[0].data(), f0.data(), points * 8));
}

// ---------------------------------------------------------------------------
// End-to-end determinism matrix
// ---------------------------------------------------------------------------

// kParticleCount mode so rebalance *decisions* (not just field results) are
// reproducible run to run; the clustered cloud concentrates particle cost
// on few ranks so epochs actually move elements.
Config matrix_config(bool balanced) {
  Config cfg;
  cfg.n = 5;
  cfg.ex = cfg.ey = cfg.ez = 4;
  cfg.fixed_dt = 1e-3;
  cfg.particles_per_rank = 10;  // replaced by the adopted cluster
  cfg.particle_coupling = 0.01;
  cfg.ordered_gs = true;  // layout-invariant reduction order for both modes
  if (balanced) {
    cfg.balance_interval = 2;
    cfg.balance_max_moves = 16;
    cfg.balance_cost_mode = CostMode::kParticleCount;
  }
  return cfg;
}

struct MatrixRun {
  std::vector<std::vector<double>> fields;  // dense global-by-gid
  long long moves = 0;
};

MatrixRun run_matrix(int nranks, const Config& cfg, int steps,
                     const ChaosPolicy* policy) {
  MatrixRun result;
  cmtbone::comm::RunOptions options;
  ChaosEngine engine(policy ? *policy : ChaosPolicy{}, nranks);
  if (policy) options.chaos = &engine;
  cmtbone::comm::run(
      nranks,
      [&](Comm& world) {
        Driver driver(world, cfg);
        driver.initialize(driver.default_ic());
        ClusterSpec cluster;
        cluster.count = 3000;
        driver.tracker()->adopt_global(clustered_cloud(cluster));
        driver.run(steps);
        std::vector<std::vector<double>> fields;
        for (int f = 0; f < driver.nfields(); ++f) {
          fields.push_back(driver.gather_global_field(f));
        }
        if (world.rank() == 0) {
          result.fields = std::move(fields);
          result.moves = driver.rebalance_moves();
        }
      },
      options);
  return result;
}

void expect_bit_identical(const MatrixRun& got, const MatrixRun& want,
                          const std::string& label) {
  ASSERT_EQ(got.fields.size(), want.fields.size()) << label;
  for (std::size_t f = 0; f < want.fields.size(); ++f) {
    ASSERT_EQ(got.fields[f].size(), want.fields[f].size()) << label;
    EXPECT_EQ(0, std::memcmp(got.fields[f].data(), want.fields[f].data(),
                             want.fields[f].size() * sizeof(double)))
        << label << ": field " << f << " differs bitwise";
  }
}

TEST(BalanceDeterminism, MatchesStaticAcrossRanksOverlapAndThreads) {
  const int steps = 6;
  const MatrixRun reference =
      run_matrix(1, matrix_config(/*balanced=*/false), steps, nullptr);
  ASSERT_FALSE(reference.fields.empty());

  bool any_moves = false;
  for (int ranks : {1, 2, 4}) {
    for (bool overlap : {false, true}) {
      for (int threads : {1, 2}) {
        Config cfg = matrix_config(/*balanced=*/true);
        cfg.overlap = overlap;
        cfg.threads_per_rank = threads;
        const MatrixRun got = run_matrix(ranks, cfg, steps, nullptr);
        const std::string label = "ranks=" + std::to_string(ranks) +
                                  " overlap=" + std::to_string(overlap) +
                                  " threads=" + std::to_string(threads);
        expect_bit_identical(got, reference, label);
        if (ranks > 1) any_moves = any_moves || got.moves > 0;
      }
    }
  }
  // The matrix must actually exercise migration, not vacuously pass.
  EXPECT_TRUE(any_moves) << "no multi-rank cell migrated any element";
}

TEST(BalanceDeterminism, ChaosDelayScheduleDoesNotChangeBits) {
  const int steps = 6;
  const MatrixRun reference =
      run_matrix(1, matrix_config(/*balanced=*/false), steps, nullptr);
  for (std::uint64_t seed : {11u, 29u}) {
    ChaosPolicy policy;
    policy.seed = seed;
    policy.delay_probability = 0.05;
    policy.max_delay_us = 2000;
    const MatrixRun got =
        run_matrix(4, matrix_config(/*balanced=*/true), steps, &policy);
    expect_bit_identical(got, reference,
                         "chaos seed " + std::to_string(seed));
  }
}

// ---------------------------------------------------------------------------
// Rebalanced checkpoint restore: a fresh driver adopts the stored layout
// ---------------------------------------------------------------------------

TEST(BalanceCheckpoint, RestoreAdoptsRebalancedLayout) {
  const int nranks = 2;
  Config cfg = matrix_config(/*balanced=*/true);
  cfg.balance_threshold = 1.0;  // force churn so the layout is non-block
  cmtbone::comm::run(nranks, [&](Comm& world) {
    Driver driver(world, cfg);
    driver.initialize(driver.default_ic());
    ClusterSpec cluster;
    cluster.count = 3000;
    driver.tracker()->adopt_global(clustered_cloud(cluster));
    driver.run(4);
    ASSERT_GT(driver.rebalance_moves(), 0);

    const std::vector<std::byte> bytes = driver.serialize_checkpoint(3);
    std::vector<std::vector<double>> fields;
    std::vector<std::int32_t> owner;
    const cmtbone::io::CheckpointHeader header =
        cmtbone::io::parse_checkpoint(bytes, "mem", &fields, &owner);
    EXPECT_EQ(header.version, 3u);
    ASSERT_EQ(owner.size(), std::size_t(driver.element_layout()
                                            .total_elements()));

    // A fresh driver starts on the block layout; restoring must migrate it
    // onto the stored ownership and reproduce the saved state bit for bit.
    Driver fresh(world, cfg);
    fresh.initialize(fresh.default_ic());
    fresh.restore_state(header, std::move(fields), owner);
    EXPECT_EQ(fresh.element_layout().owner(), driver.element_layout().owner());
    EXPECT_EQ(fresh.steps_taken(), driver.steps_taken());
    for (int f = 0; f < driver.nfields(); ++f) {
      const std::vector<double> a = driver.gather_global_field(f);
      const std::vector<double> b = fresh.gather_global_field(f);
      ASSERT_EQ(a.size(), b.size());
      EXPECT_EQ(0,
                std::memcmp(a.data(), b.data(), a.size() * sizeof(double)));
    }
  });
}

// ---------------------------------------------------------------------------
// Kill during rebalancing: recovery through a v3 checkpoint
// ---------------------------------------------------------------------------

TEST(BalanceRecovery, KillDuringRebalancedRunRecoversBitIdentical) {
  const int nranks = 4;
  const int steps = 10;

  // Particle coupling stays 0 here: particle state is not checkpointed, so
  // only a coupling-free run can promise bit-identical recovery. Particles
  // still drive the (deterministic) cost model, and threshold 1.0 forces
  // migration every epoch, so the kill lands on a genuinely rebalanced run.
  Config cfg;
  cfg.n = 5;
  cfg.ex = cfg.ey = cfg.ez = 4;
  cfg.fixed_dt = 1e-3;
  cfg.particles_per_rank = 32;
  cfg.particle_coupling = 0.0;
  cfg.ordered_gs = true;
  cfg.balance_interval = 2;
  cfg.balance_threshold = 1.0;
  cfg.balance_max_moves = 4;
  cfg.balance_cost_mode = CostMode::kParticleCount;

  // Static reference: same physics, no balancing.
  Config static_cfg = cfg;
  static_cfg.balance_interval = 0;

  auto gather_all = [](Driver& d) {
    std::vector<std::vector<double>> fields;
    for (int f = 0; f < d.nfields(); ++f) {
      fields.push_back(d.gather_global_field(f));
    }
    return fields;
  };

  std::vector<std::vector<double>> reference;
  long long baseline_moves = 0;
  cmtbone::comm::run(nranks, [&](Comm& world) {
    Driver d(world, static_cfg);
    d.initialize(d.default_ic());
    d.run(steps);
    auto fields = gather_all(d);
    if (world.rank() == 0) reference = std::move(fields);
  });
  cmtbone::comm::run(nranks, [&](Comm& world) {
    Driver d(world, cfg);
    d.initialize(d.default_ic());
    d.run(steps);
    if (world.rank() == 0) baseline_moves = d.rebalance_moves();
  });
  ASSERT_GT(baseline_moves, 0) << "workload never triggered migration";

  const fs::path dir =
      fs::temp_directory_path() / "cmtbone_balance_recovery_test";
  fs::remove_all(dir);
  fs::create_directories(dir);

  // Kill rank 1 at step 7: checkpoints land at steps 3 and 6, rebalance
  // epochs at 2, 4, 6 — the restored epoch carries a migrated (non-block)
  // ownership map, exercising the v3 restore path under recovery.
  ChaosPolicy policy;
  policy.seed = 5;
  policy.kill_rank = 1;
  policy.kill_step = 7;
  ChaosEngine engine(policy, nranks);

  cmtbone::resilience::RecoveryOptions options;
  options.checkpoint.directory = dir.string();
  options.checkpoint.interval = 3;
  options.chaos = &engine;
  std::vector<std::vector<double>> recovered;
  std::mutex mutex;
  options.on_final = [&](Driver& d, Comm& world) {
    auto fields = gather_all(d);  // collective: every rank participates
    if (world.rank() == 0) {
      std::lock_guard<std::mutex> lock(mutex);
      recovered = std::move(fields);
    }
  };
  cmtbone::resilience::RecoveryPolicy rpolicy;
  rpolicy.max_retries = 3;
  rpolicy.backoff_initial_ms = 0.1;

  const cmtbone::resilience::RecoveryReport report =
      cmtbone::resilience::run_with_recovery(nranks, cfg, steps, rpolicy,
                                             options);
  EXPECT_TRUE(report.completed);
  EXPECT_GE(report.failures, 1);
  EXPECT_GE(report.attempts, 2);
  EXPECT_GE(report.stats.checkpoints, 1);
  EXPECT_GE(report.last_restored_epoch, 0);

  ASSERT_EQ(recovered.size(), reference.size());
  for (std::size_t f = 0; f < reference.size(); ++f) {
    ASSERT_EQ(recovered[f].size(), reference[f].size());
    EXPECT_EQ(0, std::memcmp(recovered[f].data(), reference[f].data(),
                             reference[f].size() * sizeof(double)))
        << "field " << f << " differs bitwise after recovery";
  }
  fs::remove_all(dir);
}

}  // namespace
