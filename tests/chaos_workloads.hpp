#pragma once
// Shared chaos workloads: small, self-verifying comm/gs jobs run under a
// seeded ChaosEngine. Used by both the gtest suite (test_chaos.cpp) and the
// standalone seed-sweep runner (chaos_stress.cpp), so a seed that fails in
// the sweep replays byte-identically inside the debugger-friendly test
// binary.
//
// Every workload validates its own results against a sequential oracle and
// throws std::runtime_error on any mismatch (gtest-free, so the stress
// runner does not need a test framework). The return value is the chaos
// schedule digest: same (workload, seed) must always produce the same
// digest — that is the reproducibility contract chaos_stress checks.

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "chaos/chaos.hpp"
#include "comm/comm.hpp"

namespace chaosws {

/// All registered workload names, in sweep order.
std::vector<std::string> workload_names();

/// Run one workload under chaos policy ChaosPolicy::for_seed(seed, nranks).
/// Returns the schedule digest. Throws std::runtime_error on a
/// verification failure or unknown name.
std::uint64_t run_workload(const std::string& name, std::uint64_t seed);

/// Replay a failure by its printed spec, "workload/seed" (e.g.
/// "alltoallv/17"). Returns the digest. Throws on parse errors and on the
/// workload's own failures.
std::uint64_t replay(const std::string& spec);

/// Run an arbitrary rank body on `nranks` ranks under the derived-for-seed
/// chaos policy; returns the schedule digest. ChaosAbortInjected (seed 0
/// policies never abort; for_seed policies never set abort_rank) cannot
/// occur here, so any escape is a workload bug.
std::uint64_t run_with_chaos(int nranks, std::uint64_t seed,
                             const std::function<void(cmtbone::comm::Comm&)>& body);

/// Oracle-check helper: throw std::runtime_error(msg) when !ok.
void require(bool ok, const std::string& msg);

}  // namespace chaosws
