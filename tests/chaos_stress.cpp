// chaos_stress: seeded schedule-perturbation sweep over the comm/gs
// workloads (see chaos_workloads.cpp). For each workload it runs a range of
// chaos seeds; every seed perturbs the runtime schedule (delays, message
// holds, a straggler rank) while each workload self-checks against a
// sequential oracle.
//
// Each seed is also run twice and the two schedule digests compared: same
// seed must reproduce the same injected schedule, which is what makes a
// failing seed replayable. On failure the sweep stops at the FIRST failing
// seed for that workload (seeds are swept in increasing order, so this is
// already the minimal seed in the range) and prints a one-line repro:
//
//   chaos_stress --replay <workload>/<seed>

#include <cstdio>
#include <exception>
#include <string>
#include <vector>

#include "chaos_workloads.hpp"
#include "util/cli.hpp"

int main(int argc, char** argv) {
  using cmtbone::util::Cli;
  Cli cli(argc, argv);
  cli.describe("seeds", "number of seeds to sweep per workload (default 64)")
      .describe("base", "first seed of the sweep (default 1)")
      .describe("workload", "run only this workload (default: all)")
      .describe("replay", "replay one failing case, spec = workload/seed")
      .describe("no-determinism-check",
                "skip the second run that checks digest reproducibility")
      .describe("help", "print this help");
  if (cli.help_requested()) {
    std::printf("%s", cli.usage().c_str());
    return 0;
  }
  cli.reject_unknown();

  if (cli.has("replay")) {
    const std::string spec = cli.get("replay", "");
    try {
      std::uint64_t digest = chaosws::replay(spec);
      std::printf("replay %s: PASS (digest %016llx)\n", spec.c_str(),
                  (unsigned long long)digest);
      return 0;
    } catch (const std::exception& e) {
      std::printf("replay %s: FAIL\n  %s\n", spec.c_str(), e.what());
      return 1;
    }
  }

  const int seeds = cli.get_int("seeds", 64);
  const long long base = cli.get_ll("base", 1);
  const std::string only = cli.get("workload", "");
  const bool check_determinism = !cli.has("no-determinism-check");

  int failures = 0;
  int swept = 0;
  for (const std::string& name : chaosws::workload_names()) {
    if (!only.empty() && only != name) continue;
    ++swept;
    int ran = 0;
    bool failed = false;
    for (long long s = base; s < base + seeds; ++s) {
      const std::uint64_t seed = (std::uint64_t)s;
      try {
        std::uint64_t d1 = chaosws::run_workload(name, seed);
        if (check_determinism) {
          std::uint64_t d2 = chaosws::run_workload(name, seed);
          chaosws::require(d1 == d2,
                           "schedule digest not reproducible for this seed");
        }
        ++ran;
      } catch (const std::exception& e) {
        // First failing seed in the sweep == minimal seed in range.
        std::printf("%-12s seed %lld: FAIL\n  %s\n  repro: chaos_stress "
                    "--replay %s/%lld\n",
                    name.c_str(), s, e.what(), name.c_str(), s);
        ++failures;
        failed = true;
        break;
      }
    }
    if (!failed) {
      std::printf("%-12s %d seeds OK%s\n", name.c_str(), ran,
                  check_determinism ? " (digests reproducible)" : "");
    }
  }
  if (swept == 0) {
    // A typo'd --workload must not read as a green sweep.
    std::printf("chaos_stress: no workload named '%s'\n", only.c_str());
    return 1;
  }
  if (failures > 0) {
    std::printf("chaos_stress: %d workload(s) FAILED\n", failures);
    return 1;
  }
  std::printf("chaos_stress: all workloads passed\n");
  return 0;
}
