// Trace extrapolation: step-template extraction and at-scale synthesis.

#include <gtest/gtest.h>

#include <cmath>

#include "comm/runtime.hpp"
#include "core/driver.hpp"
#include "mesh/numbering.hpp"
#include "trace/extrapolate.hpp"
#include "trace/replay.hpp"

namespace {

using cmtbone::comm::Comm;
using cmtbone::mesh::BoxSpec;
using cmtbone::trace::Event;
using cmtbone::trace::EventKind;
using cmtbone::trace::ExchangeStructure;
using cmtbone::trace::Phase;
using cmtbone::trace::Recorder;
using cmtbone::trace::ReplayConfig;
using cmtbone::trace::StepModel;
using cmtbone::trace::Trace;

// 8-rank 2x2x2 recording geometry, 2x2x2 elements per rank.
BoxSpec base_spec(int n = 4) {
  BoxSpec spec;
  spec.n = n;
  spec.px = spec.py = spec.pz = 2;
  spec.ex = spec.ey = spec.ez = 4;
  return spec;
}

cmtbone::core::Config config_for(const BoxSpec& spec) {
  cmtbone::core::Config cfg;
  cfg.n = spec.n;
  cfg.ex = spec.ex;
  cfg.ey = spec.ey;
  cfg.ez = spec.ez;
  cfg.px = spec.px;
  cfg.py = spec.py;
  cfg.pz = spec.pz;
  cfg.periodic = spec.periodic;
  // CFL mode: the per-step dt reduction is the collective the period
  // detector keys on. Pairwise gs keeps one message per partner.
  cfg.gs_method = cmtbone::gs::Method::kPairwise;
  return cfg;
}

Trace record_run(const BoxSpec& spec, int steps) {
  Recorder recorder(spec.nranks());
  cmtbone::comm::RunOptions opts;
  opts.tracer = &recorder;
  cmtbone::comm::run(spec.nranks(), [&](Comm& world) {
    cmtbone::core::Driver driver(world, config_for(spec));
    driver.initialize(driver.default_ic());
    driver.run(steps);
  }, opts);
  return recorder.take();
}

// --- structural model ----------------------------------------------------------

TEST(ExchangeStructure, PeriodicTorusCornerRankHasAllPartners) {
  // On a periodic 2x2x2 grid every rank has a partner across each face and
  // reaches every other rank through the 26 directions.
  const BoxSpec spec = base_spec();
  const ExchangeStructure st = cmtbone::trace::exchange_structure(spec, 0);
  for (int d = 0; d < 6; ++d) {
    EXPECT_GE(st.face_partner[d], 0) << "face " << d;
    // 2x2 element plane of n^2 GLL face points each.
    EXPECT_EQ(st.face_contacts[d], 4LL * spec.n * spec.n) << "face " << d;
  }
  // All 7 other ranks are gs partners (directions merge per rank).
  EXPECT_EQ(st.gs_contacts.size(), 7u);
  for (const auto& [partner, ids] : st.gs_contacts) {
    EXPECT_NE(partner, 0);
    EXPECT_GT(ids, 0);
  }
}

TEST(ExchangeStructure, SingleRankAxisHasNoSelfMessages) {
  // px=py=pz=1: every direction wraps onto the rank itself — no messages.
  BoxSpec spec;
  spec.n = 4;
  spec.px = spec.py = spec.pz = 1;
  spec.ex = spec.ey = spec.ez = 2;
  const ExchangeStructure st = cmtbone::trace::exchange_structure(spec, 0);
  for (int d = 0; d < 6; ++d) {
    EXPECT_EQ(st.face_partner[d], -1);
    EXPECT_EQ(st.face_contacts[d], 0);
  }
  EXPECT_TRUE(st.gs_contacts.empty());
}

TEST(ExchangeStructure, FaceContactsMatchPlaneGeometry) {
  // 4x2x1 processor grid, 1-element block per rank: the x-face plane is
  // 1x1 elements, so n^2 contacts; a y-face sees the same.
  BoxSpec spec;
  spec.n = 5;
  spec.px = 4;
  spec.py = 2;
  spec.pz = 1;
  spec.ex = 4;
  spec.ey = 2;
  spec.ez = 1;
  const ExchangeStructure st = cmtbone::trace::exchange_structure(spec, 0);
  EXPECT_EQ(st.face_contacts[0], 25);  // -x: 1x1 element plane, 5x5 points
  EXPECT_EQ(st.face_contacts[2], 25);  // -y
}

// --- scale_spec -----------------------------------------------------------------

TEST(ScaleSpec, WeakScalingKeepsThePerRankBlock) {
  const BoxSpec base = base_spec();
  for (int p : {2, 8, 64, 4096}) {
    const BoxSpec target = cmtbone::trace::scale_spec(base, p);
    EXPECT_EQ(target.nranks(), p);
    EXPECT_EQ(target.n, base.n);
    // 2x2x2 elements per rank at every scale.
    EXPECT_EQ(target.ex / target.px, 2);
    EXPECT_EQ(target.ey / target.py, 2);
    EXPECT_EQ(target.ez / target.pz, 2);
  }
}

// --- extraction -----------------------------------------------------------------

TEST(Extraction, FindsTheSteadyStepOfALiveRun) {
  const BoxSpec base = base_spec();
  const Trace trace = record_run(base, 4);
  const StepModel model = cmtbone::trace::extract_step_model(trace, base);

  // The driver's steady step: one face round per RK3 stage, one gs round
  // per conserved field (dssum), and the CFL dt allreduce.
  int faces = 0, gs = 0, colls = 0;
  for (const Phase& ph : model.phases) {
    if (ph.kind == Phase::Kind::kFaceRound) ++faces;
    if (ph.kind == Phase::Kind::kGsRound) ++gs;
    if (ph.kind == Phase::Kind::kCollective) ++colls;
  }
  EXPECT_EQ(faces, 3);
  EXPECT_EQ(gs, 5);
  EXPECT_EQ(colls, 1);
  EXPECT_GT(model.step_seconds, 0.0);
  EXPECT_DOUBLE_EQ(model.base_elems, 8.0);

  // Exchange rounds carry a meaningful payload intensity (multiple fields
  // of 8-byte values per contact point).
  for (const Phase& ph : model.phases) {
    if (ph.kind != Phase::Kind::kCollective) {
      EXPECT_GE(ph.bytes_per_contact, 8.0);
    }
  }
}

TEST(Extraction, ThrowsWithoutASteadyPeriod) {
  // A run with no collectives (fixed dt disables the CFL reduction) has no
  // per-step marker; extraction must refuse rather than guess.
  const BoxSpec base = base_spec();
  Recorder recorder(base.nranks());
  cmtbone::comm::RunOptions opts;
  opts.tracer = &recorder;
  cmtbone::comm::run(base.nranks(), [&](Comm& world) {
    cmtbone::core::Config cfg = config_for(base);
    cfg.fixed_dt = 1e-3;
    cmtbone::core::Driver driver(world, cfg);
    driver.initialize(driver.default_ic());
    driver.run(2);
  }, opts);
  Trace trace = recorder.take();
  EXPECT_THROW(cmtbone::trace::extract_step_model(trace, base),
               std::runtime_error);
}

TEST(Extraction, RejectsMismatchedRankCount) {
  const BoxSpec base = base_spec();
  const Trace trace = record_run(base, 4);
  BoxSpec wrong = base;
  wrong.px = 4;
  wrong.ex = 8;  // 16 ranks
  EXPECT_THROW(cmtbone::trace::extract_step_model(trace, wrong),
               std::runtime_error);
}

// --- synthesis ------------------------------------------------------------------

class ExtrapolateFromLiveRun : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    base_ = new BoxSpec(base_spec());
    model_ = new StepModel(cmtbone::trace::extract_step_model(
        record_run(*base_, 4), *base_));
  }
  static void TearDownTestSuite() {
    delete model_;
    delete base_;
    model_ = nullptr;
    base_ = nullptr;
  }
  static BoxSpec* base_;
  static StepModel* model_;
};
BoxSpec* ExtrapolateFromLiveRun::base_ = nullptr;
StepModel* ExtrapolateFromLiveRun::model_ = nullptr;

TEST_F(ExtrapolateFromLiveRun, IdentityScaleReplaysCausallyConsistent) {
  const Trace synthetic =
      cmtbone::trace::extrapolate(*model_, *base_, /*steps=*/2);
  EXPECT_EQ(synthetic.nranks(), base_->nranks());
  ReplayConfig cfg;
  cfg.machine = cmtbone::netmodel::qdr_infiniband();
  auto result = cmtbone::trace::replay(synthetic, cfg);  // no throw
  EXPECT_GT(result.makespan, 0.0);
  EXPECT_GT(result.messages, 0u);
}

TEST_F(ExtrapolateFromLiveRun, LargerGridsStayCausallyConsistent) {
  // The synthesized tag pairing must line up across ranks the recording
  // never saw — an unmatched receive or stalled collective throws.
  ReplayConfig cfg;
  cfg.machine = cmtbone::netmodel::qdr_infiniband();
  for (int p : {2, 27, 64}) {
    const BoxSpec target = cmtbone::trace::scale_spec(*base_, p);
    const Trace synthetic =
        cmtbone::trace::extrapolate(*model_, target, /*steps=*/2);
    EXPECT_EQ(synthetic.nranks(), p);
    auto result = cmtbone::trace::replay(synthetic, cfg);
    EXPECT_GT(result.makespan, 0.0) << p << " ranks";
  }
}

TEST_F(ExtrapolateFromLiveRun, SynthesisIsDeterministic) {
  const BoxSpec target = cmtbone::trace::scale_spec(*base_, 16);
  const Trace a = cmtbone::trace::extrapolate(*model_, target, 2);
  const Trace b = cmtbone::trace::extrapolate(*model_, target, 2);
  ASSERT_EQ(a.nranks(), b.nranks());
  for (int r = 0; r < a.nranks(); ++r) {
    ASSERT_EQ(a.ranks[r].size(), b.ranks[r].size()) << "rank " << r;
    for (std::size_t i = 0; i < a.ranks[r].size(); ++i) {
      const Event& x = a.ranks[r][i];
      const Event& y = b.ranks[r][i];
      EXPECT_EQ(x.kind, y.kind);
      EXPECT_EQ(x.t_start, y.t_start);
      EXPECT_EQ(x.peer, y.peer);
      EXPECT_EQ(x.tag, y.tag);
      EXPECT_EQ(x.bytes, y.bytes);
      EXPECT_EQ(x.collective, y.collective);
    }
  }
}

TEST_F(ExtrapolateFromLiveRun, StepsMultiplyTheSynthesizedWork) {
  const BoxSpec target = cmtbone::trace::scale_spec(*base_, 8);
  ReplayConfig cfg;
  cfg.machine = cmtbone::netmodel::qdr_infiniband();
  auto one = cmtbone::trace::replay(
      cmtbone::trace::extrapolate(*model_, target, 1), cfg);
  auto four = cmtbone::trace::replay(
      cmtbone::trace::extrapolate(*model_, target, 4), cfg);
  EXPECT_EQ(four.messages, 4 * one.messages);
  EXPECT_EQ(four.bytes, 4 * one.bytes);
  EXPECT_NEAR(four.makespan, 4.0 * one.makespan, 0.25 * four.makespan);
}

TEST_F(ExtrapolateFromLiveRun, ShapeAtScalesWithTheGrid) {
  const double intensity = 40.0;  // 5 fields x 8 bytes per shared id
  const BoxSpec small = cmtbone::trace::scale_spec(*base_, 8);
  const BoxSpec big = cmtbone::trace::scale_spec(*base_, 512);
  const auto s = cmtbone::trace::shape_at(small, 0, intensity);
  const auto b = cmtbone::trace::shape_at(big, 0, intensity);
  EXPECT_EQ(s.ranks, 8);
  EXPECT_EQ(b.ranks, 512);
  // Weak scaling: the per-rank surface (neighbors, pairwise payload,
  // crystal records) saturates at the full 26-direction stencil while the
  // global big-vector grows with the mesh.
  EXPECT_EQ(b.neighbors, 26);
  EXPECT_GT(b.big_vector_bytes, s.big_vector_bytes);
  EXPECT_GT(s.pairwise_bytes, 0);
  EXPECT_GT(s.crystal_records, 0);
  EXPECT_EQ(b.big_vector_bytes,
            cmtbone::mesh::total_gll_points(big) * 8);
}

}  // namespace
