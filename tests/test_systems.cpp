// Hyperbolic-systems scenario pack: the HyperbolicSystem interface (Burgers
// and Euler/Sod next to the historical proxy and advection modes), analytic
// convergence rates, the Sod shock tube against the exact Riemann solution,
// stretched-mesh geometry (per-element metric dt, accuracy, determinism),
// non-physical-state detection (SolverDiverged raised collectively, terminal
// under recovery), the interpolated particle carrier, and v3 checkpoint
// compatibility for proxy runs.

#include <gtest/gtest.h>

#include <unistd.h>

#include <chrono>
#include <cmath>
#include <cstring>
#include <filesystem>
#include <mutex>
#include <string>
#include <vector>

#include "chaos/chaos.hpp"
#include "comm/runtime.hpp"
#include "core/driver.hpp"
#include "core/system.hpp"
#include "io/checkpoint.hpp"
#include "mesh/geometry.hpp"
#include "resilience/recovery.hpp"

namespace {

namespace fs = std::filesystem;

// Per-test scratch directory, removed on destruction.
struct ScratchDir {
  explicit ScratchDir(const std::string& tag) {
    path = fs::temp_directory_path() /
           ("cmtbone_sys_" + tag + "_" + std::to_string(::getpid()));
    fs::create_directories(path);
  }
  ~ScratchDir() { fs::remove_all(path); }
  fs::path path;
};

using cmtbone::chaos::ChaosEngine;
using cmtbone::chaos::ChaosPolicy;
using cmtbone::comm::Comm;
using cmtbone::core::Config;
using cmtbone::core::Driver;
using cmtbone::core::EulerCase;
using cmtbone::core::Physics;
using cmtbone::core::SolverDiverged;
using cmtbone::core::sod_exact;
using cmtbone::core::SodSample;

// ---------------------------------------------------------------------------
// Naming and the exact Riemann solver (pure, no comm)
// ---------------------------------------------------------------------------

TEST(SystemNames, PhysicsNamesRoundTrip) {
  for (Physics p : {Physics::kProxyAdvection, Physics::kAdvection,
                    Physics::kBurgers, Physics::kEuler}) {
    Physics back{};
    ASSERT_TRUE(cmtbone::core::physics_from_name(physics_name(p), &back));
    EXPECT_EQ(back, p);
  }
  Physics out{};
  EXPECT_FALSE(cmtbone::core::physics_from_name("magnetohydro", &out));
  EXPECT_STREQ(cmtbone::core::euler_case_name(EulerCase::kSmoothWave),
               "smooth-wave");
  EXPECT_STREQ(cmtbone::core::euler_case_name(EulerCase::kSod), "sod");
}

TEST(SodExact, ReproducesTheKnownStarState) {
  // Toro's reference solution for the Sod states at gamma = 1.4:
  // p* = 0.30313, u* = 0.92745, rho*_L = 0.42632, rho*_R = 0.26557.
  const double gamma = 1.4;
  const SodSample left_of_contact = sod_exact(0.92745 - 1e-3, gamma);
  EXPECT_NEAR(left_of_contact.p, 0.30313, 1e-4);
  EXPECT_NEAR(left_of_contact.u, 0.92745, 1e-4);
  EXPECT_NEAR(left_of_contact.rho, 0.42632, 1e-4);
  const SodSample right_of_contact = sod_exact(0.92745 + 1e-3, gamma);
  EXPECT_NEAR(right_of_contact.rho, 0.26557, 1e-4);
  EXPECT_NEAR(right_of_contact.p, 0.30313, 1e-4);
  // Undisturbed states outside the wave fan.
  const SodSample far_left = sod_exact(-2.0, gamma);
  EXPECT_DOUBLE_EQ(far_left.rho, 1.0);
  EXPECT_DOUBLE_EQ(far_left.p, 1.0);
  const SodSample far_right = sod_exact(2.0, gamma);
  EXPECT_DOUBLE_EQ(far_right.rho, 0.125);
  EXPECT_DOUBLE_EQ(far_right.p, 0.1);
  // Inside the rarefaction fan the profile is smooth and decreasing.
  const SodSample fan_a = sod_exact(-0.8, gamma);
  const SodSample fan_b = sod_exact(-0.3, gamma);
  EXPECT_GT(fan_a.rho, fan_b.rho);
  EXPECT_GT(fan_b.rho, left_of_contact.rho);
}

// ---------------------------------------------------------------------------
// Convergence rates against analytic solutions
// ---------------------------------------------------------------------------

// Observed order from two element resolutions (2x refinement).
double observed_order(double err_coarse, double err_fine) {
  return std::log2(err_coarse / err_fine);
}

TEST(Convergence, AdvectionObservedOrderTracksN) {
  // DG-SEM with degree n-1 elements converges at order ~n in the element
  // size; the observed order over a 2x refinement must come close.
  cmtbone::comm::run(1, [](Comm& world) {
    for (int n : {3, 4}) {
      double errs[2];
      int idx = 0;
      for (int e : {4, 8}) {
        Config cfg;
        cfg.physics = Physics::kAdvection;
        cfg.n = n;
        cfg.ex = cfg.ey = cfg.ez = e;
        cfg.use_dssum = false;  // pure DG
        cfg.fixed_dt = 5e-4;    // time error well below spatial error
        Driver driver(world, cfg);
        driver.initialize(driver.default_ic());
        driver.run(200);
        errs[idx++] =
            driver.linf_error(driver.system().exact_solution(driver.time()));
      }
      const double order = observed_order(errs[0], errs[1]);
      EXPECT_GT(order, n - 1.0) << "n=" << n << " errs " << errs[0] << " "
                                << errs[1];
    }
  });
}

TEST(Convergence, BurgersPreShockObservedOrder) {
  // Smooth Burgers before characteristics cross: the Newton-on-
  // characteristics exact solution is available, and the nonlinear DG
  // solution must converge at ~order n toward it.
  cmtbone::comm::run(1, [](Comm& world) {
    double errs[2];
    int idx = 0;
    for (int e : {4, 8}) {
      Config cfg;
      cfg.physics = Physics::kBurgers;
      cfg.velocity = {1.0, 0.0, 0.0};  // 1-D dynamics along x
      cfg.n = 4;
      cfg.ex = e;
      cfg.ey = cfg.ez = 1;
      cfg.use_dssum = false;
      cfg.fixed_dt = 1e-3;
      Driver driver(world, cfg);
      driver.initialize(driver.default_ic());
      ASSERT_TRUE(driver.system().has_exact_solution());
      driver.run(200);  // t = 0.2, well before the shock
      ASSERT_LT(driver.time(), driver.system().exact_solution_horizon());
      errs[idx++] =
          driver.l1_error(0, driver.system().exact_solution(driver.time()));
    }
    const double order = observed_order(errs[0], errs[1]);
    EXPECT_GT(order, 3.0) << "errs " << errs[0] << " " << errs[1];
  });
}

TEST(BurgersExact, SatisfiesTheCharacteristicEquation) {
  // u(x, t) must solve u = g(x - a u t) to solver precision pre-shock.
  cmtbone::comm::run(1, [](Comm& world) {
    Config cfg;
    cfg.physics = Physics::kBurgers;
    cfg.velocity = {1.0, 0.0, 0.0};
    cfg.n = 3;
    cfg.ex = cfg.ey = cfg.ez = 1;
    Driver driver(world, cfg);
    const auto& sys = driver.system();
    // Shock-formation time for g = 0.5 + 0.25 sin(2 pi x): 2 / pi.
    EXPECT_NEAR(sys.exact_solution_horizon(), 2.0 / M_PI, 1e-12);
    const double t = 0.3;
    auto exact = sys.exact_solution(t);
    auto g = [](double x) { return 0.5 + 0.25 * std::sin(2.0 * M_PI * x); };
    for (double x : {0.0, 0.13, 0.4, 0.55, 0.78, 0.99}) {
      const double u = exact(x, 0.0, 0.0, 0);
      EXPECT_NEAR(u, g(x - u * t), 1e-12) << "x=" << x;
    }
  });
}

TEST(EulerSmoothWave, MatchesTheEntropyWaveTranslate) {
  // The default Euler case is an entropy wave: density rides the constant
  // carrier velocity, velocity and pressure stay uniform, so the exact
  // solution is the translated initial condition.
  cmtbone::comm::run(1, [](Comm& world) {
    Config cfg;
    cfg.physics = Physics::kEuler;
    cfg.n = 6;
    cfg.ex = cfg.ey = cfg.ez = 2;
    cfg.use_dssum = false;
    cfg.fixed_dt = 1e-3;
    Driver driver(world, cfg);
    driver.initialize(driver.default_ic());
    ASSERT_TRUE(driver.system().has_exact_solution());
    driver.run(50);
    const double err =
        driver.linf_error(driver.system().exact_solution(driver.time()));
    EXPECT_LT(err, 5e-3);
  });
}

TEST(Sod, ShockTubeDensityMatchesExactRiemann) {
  // 1-D shock tube on a high-aspect non-periodic box: rarefaction, contact
  // and shock must land where the exact Riemann solution puts them. L1 is
  // the right norm across the discontinuities.
  cmtbone::comm::run(1, [](Comm& world) {
    Config cfg;
    cfg.physics = Physics::kEuler;
    cfg.euler_case = EulerCase::kSod;
    cfg.periodic = false;
    cfg.n = 2;  // lowest order: enough Rusanov dissipation at the shock
    cfg.ex = 200;
    cfg.ey = cfg.ez = 1;
    cfg.cfl = 0.25;
    // Pure DG: dssum face-averaging would cancel the Rusanov jump
    // dissipation exactly where the shock needs it.
    cfg.use_dssum = false;
    Driver driver(world, cfg);
    driver.initialize(driver.default_ic());
    while (driver.time() < 0.15) driver.step();
    const double t = driver.time();
    auto exact = driver.system().exact_solution(t);
    const double err_rho = driver.l1_error(0, exact);
    EXPECT_LT(err_rho, 0.01) << "L1 density error at t=" << t;
    // Spot-check the plateau between contact and shock.
    bool sampled = false;
    const auto rho = driver.field(0);
    const int n = cfg.n;
    for (int e = 0; e < driver.element_layout().nel() && !sampled; ++e) {
      auto c = driver.node_coords(e, n / 2, 0, 0);
      const double xi = (c[0] - 0.5) / t;
      if (xi > 1.0 && xi < 1.5) {
        const std::size_t idx =
            std::size_t(e) * n * n * n + n / 2;  // (i=n/2, j=0, k=0)
        EXPECT_NEAR(rho[idx], 0.26557, 0.02);
        sampled = true;
      }
    }
    EXPECT_TRUE(sampled);
  });
}

// ---------------------------------------------------------------------------
// Stretched meshes: metric dt, accuracy, and determinism
// ---------------------------------------------------------------------------

TEST(StretchedMesh, ComputeDtUsesTheThinnestElement) {
  // The CFL bound must follow the per-element metric spacing: under a
  // geometric map the thinnest layer, not the mean L/ex slab, limits dt.
  // (With the historical uniform-h formula dt would overshoot by ~r^(ex-1).)
  cmtbone::comm::run(1, [](Comm& world) {
    Config cfg;
    cfg.physics = Physics::kAdvection;
    cfg.velocity = {1.0, 0.0, 0.0};
    cfg.n = 4;
    cfg.ex = 4;
    cfg.ey = cfg.ez = 1;
    cfg.mesh_map[0] = {cmtbone::mesh::AxisMapKind::kGeometric, 2.0, 1.0};
    Driver driver(world, cfg);
    driver.initialize(driver.default_ic());
    const double w_min = cmtbone::mesh::min_axis_width(cfg.mesh_map[0], 4);
    const double w_uniform = 1.0 / 4;
    ASSERT_LT(w_min, 0.5 * w_uniform);  // the map actually stretches
    const double dt = driver.compute_dt();
    // dr_min for the element's GLL rule:
    const auto& r = driver.operators().rule.nodes;
    const double expect = cfg.cfl * 0.5 * (r[1] - r[0]) * w_min / 1.0;
    EXPECT_DOUBLE_EQ(dt, expect);
    // The uniform-slab formula would allow a dt ~3.75x larger — the bug this
    // pins down.
    EXPECT_LT(dt, cfg.cfl * 0.5 * (r[1] - r[0]) * w_uniform / 1.0);
  });
}

TEST(StretchedMesh, AdvectionStaysAccurate) {
  // Geometric factors on a stretched, scaled box: the translate solution
  // must still be reproduced to discretization accuracy.
  cmtbone::comm::run(1, [](Comm& world) {
    Config cfg;
    cfg.physics = Physics::kAdvection;
    cfg.n = 6;
    cfg.ex = cfg.ey = cfg.ez = 4;
    cfg.use_dssum = false;
    cfg.fixed_dt = 5e-4;
    cfg.mesh_map[0] = {cmtbone::mesh::AxisMapKind::kGeometric, 1.3, 1.0};
    cfg.mesh_map[1] = {cmtbone::mesh::AxisMapKind::kTanh, 1.5, 1.0};
    Driver driver(world, cfg);
    driver.initialize(driver.default_ic());
    driver.run(100);
    const double err =
        driver.linf_error(driver.system().exact_solution(driver.time()));
    EXPECT_LT(err, 5e-3);
  });
}

// ---------------------------------------------------------------------------
// Determinism matrices for the new systems
// ---------------------------------------------------------------------------

Config matrix_config(Physics physics) {
  Config cfg;
  cfg.physics = physics;
  cfg.n = 4;
  cfg.ex = cfg.ey = cfg.ez = 4;
  cfg.fixed_dt = 1e-3;
  cfg.ordered_gs = true;  // rank-count-invariant dssum fold order
  return cfg;
}

std::vector<std::vector<double>> run_global_fields(int nranks,
                                                   const Config& cfg,
                                                   int steps,
                                                   const ChaosPolicy* policy) {
  std::vector<std::vector<double>> result;
  cmtbone::comm::RunOptions options;
  ChaosEngine engine(policy ? *policy : ChaosPolicy{}, nranks);
  if (policy) options.chaos = &engine;
  cmtbone::comm::run(
      nranks,
      [&](Comm& world) {
        Driver driver(world, cfg);
        driver.initialize(driver.default_ic());
        driver.run(steps);
        std::vector<std::vector<double>> fields;
        for (int f = 0; f < driver.nfields(); ++f) {
          fields.push_back(driver.gather_global_field(f));
        }
        if (world.rank() == 0) result = std::move(fields);
      },
      options);
  return result;
}

void expect_fields_bit_identical(const std::vector<std::vector<double>>& got,
                                 const std::vector<std::vector<double>>& want,
                                 const std::string& label) {
  ASSERT_EQ(got.size(), want.size()) << label;
  for (std::size_t f = 0; f < want.size(); ++f) {
    ASSERT_EQ(got[f].size(), want[f].size()) << label;
    EXPECT_EQ(0, std::memcmp(got[f].data(), want[f].data(),
                             want[f].size() * sizeof(double)))
        << label << ": field " << f << " differs bitwise";
  }
}

void run_determinism_matrix(const Config& base, const std::string& tag) {
  const int steps = 5;
  const auto reference = run_global_fields(1, base, steps, nullptr);
  ASSERT_FALSE(reference.empty());
  for (int ranks : {1, 2, 4}) {
    for (bool overlap : {false, true}) {
      for (int threads : {1, 2}) {
        Config cfg = base;
        cfg.overlap = overlap;
        cfg.threads_per_rank = threads;
        const auto got = run_global_fields(ranks, cfg, steps, nullptr);
        expect_fields_bit_identical(
            got, reference,
            tag + " ranks=" + std::to_string(ranks) +
                " overlap=" + std::to_string(overlap) +
                " threads=" + std::to_string(threads));
      }
    }
  }
}

TEST(SystemDeterminism, BurgersMatrixMatchesSerialReference) {
  run_determinism_matrix(matrix_config(Physics::kBurgers), "burgers");
}

TEST(SystemDeterminism, EulerMatrixMatchesSerialReference) {
  run_determinism_matrix(matrix_config(Physics::kEuler), "euler");
}

TEST(SystemDeterminism, StretchedMeshMatrixMatchesSerialReference) {
  Config cfg = matrix_config(Physics::kAdvection);
  cfg.mesh_map[0] = {cmtbone::mesh::AxisMapKind::kGeometric, 1.3, 1.0};
  cfg.mesh_map[1] = {cmtbone::mesh::AxisMapKind::kTanh, 1.5, 1.0};
  run_determinism_matrix(cfg, "stretched");
}

TEST(SystemDeterminism, ChaosDelaysDoNotChangeEulerBits) {
  const int steps = 5;
  const Config cfg = matrix_config(Physics::kEuler);
  const auto reference = run_global_fields(1, cfg, steps, nullptr);
  ChaosPolicy policy;
  policy.seed = 17;
  policy.delay_probability = 0.05;
  policy.max_delay_us = 2000;
  Config chaotic = cfg;
  chaotic.overlap = true;
  const auto got = run_global_fields(4, chaotic, steps, &policy);
  expect_fields_bit_identical(got, reference, "euler chaos seed 17");
}

TEST(SystemDeterminism, GsBackendOverlapMatchesBlockingForEuler) {
  // The gs face backend folds mine+neighbor, so its bits differ from the
  // direct backend — the guarantee is per-backend: overlap vs blocking at
  // fixed ranks must agree exactly.
  const int steps = 5;
  Config cfg = matrix_config(Physics::kEuler);
  cfg.face_backend = cmtbone::core::FaceBackend::kGatherScatter;
  const auto blocking = run_global_fields(4, cfg, steps, nullptr);
  Config over = cfg;
  over.overlap = true;
  const auto overlapped = run_global_fields(4, over, steps, nullptr);
  expect_fields_bit_identical(overlapped, blocking, "euler gs overlap");
}

// ---------------------------------------------------------------------------
// Non-physical states: SolverDiverged semantics
// ---------------------------------------------------------------------------

TEST(SolverDivergence, NegativeDensityRaisesOnEveryRankTogether) {
  // Only rank 1's subdomain holds the bad state; the dt-reduction sentinel
  // must make BOTH ranks throw SolverDiverged at the same boundary.
  for (double fixed_dt : {0.0, 1e-3}) {  // CFL sentinel path and flag path
    std::mutex mu;
    std::vector<std::string> thrown(2);
    cmtbone::comm::run(2, [&](Comm& world) {
      Config cfg;
      cfg.physics = Physics::kEuler;
      cfg.n = 3;
      cfg.ex = cfg.ey = cfg.ez = 2;
      cfg.fixed_dt = fixed_dt;
      Driver driver(world, cfg);
      driver.initialize([](double x, double, double, int f) {
        if (f == 0) return x < 0.5 ? 1.0 : -1.0;  // bad density on the right
        if (f == 4) return 2.5;
        return 0.0;
      });
      try {
        driver.step();
      } catch (const SolverDiverged& e) {
        std::lock_guard<std::mutex> lock(mu);
        thrown[std::size_t(world.rank())] = e.what();
      }
    });
    for (int rank = 0; rank < 2; ++rank) {
      EXPECT_NE(thrown[std::size_t(rank)].find("solver diverged at step 0"),
                std::string::npos)
          << "fixed_dt=" << fixed_dt << " rank " << rank << ": got '"
          << thrown[std::size_t(rank)] << "'";
    }
  }
}

TEST(SolverDivergence, BurgersBlowupIsDetectedMidRun) {
  // A wildly unstable dt drives Burgers to non-finite values within a few
  // steps; the admissibility scan must stop the run with a structured error
  // instead of letting NaNs advance forever.
  cmtbone::comm::run(1, [](Comm& world) {
    Config cfg;
    cfg.physics = Physics::kBurgers;
    cfg.n = 4;
    cfg.ex = 8;
    cfg.ey = cfg.ez = 1;
    cfg.velocity = {1.0, 0.0, 0.0};
    cfg.fixed_dt = 50.0;
    Driver driver(world, cfg);
    driver.initialize(driver.default_ic());
    long long diverged_at = -1;
    try {
      driver.run(200);
    } catch (const SolverDiverged& e) {
      diverged_at = e.step;
    }
    ASSERT_GE(diverged_at, 1) << "blow-up never detected";
    EXPECT_LT(diverged_at, 200);
  });
}

TEST(SolverDivergence, RecoveryTreatsItAsTerminal) {
  // Deterministic replay reproduces the same divergence, so the supervisor
  // must rethrow immediately: no retry, no backoff sleep. A retry would
  // trip the 60-second backoff and fail the wall-clock bound.
  ScratchDir dir("diverge");
  cmtbone::resilience::RecoveryPolicy rpolicy;
  rpolicy.max_retries = 5;
  rpolicy.backoff_initial_ms = 60000.0;
  cmtbone::resilience::RecoveryOptions options;
  options.checkpoint.directory = dir.path.string();
  options.checkpoint.interval = 2;
  options.initial_condition = [](double x, double, double, int f) {
    if (f == 0) return x < 0.5 ? 1.0 : -1.0;
    if (f == 4) return 2.5;
    return 0.0;
  };
  Config cfg;
  cfg.physics = Physics::kEuler;
  cfg.n = 3;
  cfg.ex = cfg.ey = cfg.ez = 2;
  cfg.fixed_dt = 1e-3;
  const auto start = std::chrono::steady_clock::now();
  EXPECT_THROW(
      cmtbone::resilience::run_with_recovery(1, cfg, 6, rpolicy, options),
      SolverDiverged);
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  EXPECT_LT(elapsed, 10.0) << "supervisor appears to have retried/backed off";
}

TEST(SolverDivergence, EulerRecoversBitIdenticallyUnderChaosKill) {
  // The Euler path through checkpoint/restore: a chaos kill mid-run must
  // recover to the exact bits of the uninterrupted run.
  Config cfg = matrix_config(Physics::kEuler);
  cfg.ordered_gs = false;  // plain config; recovery replays the same layout
  const int steps = 9;
  const auto baseline = run_global_fields(1, cfg, steps, nullptr);

  ScratchDir dir("euler_chaos");
  ChaosPolicy policy;
  policy.seed = 3;
  policy.kill_rank = 0;
  policy.kill_step = 5;
  ChaosEngine engine(policy, 1);
  cmtbone::resilience::RecoveryPolicy rpolicy;
  rpolicy.backoff_initial_ms = 0.1;
  cmtbone::resilience::RecoveryOptions options;
  options.checkpoint.directory = dir.path.string();
  options.checkpoint.interval = 3;
  options.chaos = &engine;
  std::vector<std::vector<double>> recovered;
  std::mutex mu;
  options.on_final = [&](Driver& d, Comm& world) {
    std::vector<std::vector<double>> fields;
    for (int f = 0; f < d.nfields(); ++f) {
      fields.push_back(d.gather_global_field(f));
    }
    std::lock_guard<std::mutex> lock(mu);
    if (world.rank() == 0) recovered = std::move(fields);
  };
  const auto report =
      cmtbone::resilience::run_with_recovery(1, cfg, steps, rpolicy, options);
  EXPECT_TRUE(report.completed);
  EXPECT_GE(report.failures, 1);
  expect_fields_bit_identical(recovered, baseline, "euler chaos recovery");
}

// ---------------------------------------------------------------------------
// Particle carrier velocity: always the interpolated field
// ---------------------------------------------------------------------------

TEST(ParticleCarrier, EulerParticlesFollowTheLocalFlow) {
  // The flow field carries velocity 0.25 along x while config.velocity says
  // (1, 0.5, 0.25): particles must ride the interpolated flow, not the
  // config constant — the historical non-Euler fallback bug.
  cmtbone::comm::run(1, [](Comm& world) {
    Config cfg;
    cfg.physics = Physics::kEuler;
    cfg.n = 4;
    cfg.ex = cfg.ey = cfg.ez = 2;
    cfg.fixed_dt = 1e-3;
    cfg.particles_per_rank = 8;
    Driver driver(world, cfg);
    const double vx = 0.25, gamma = cfg.gamma;
    driver.initialize([vx, gamma](double, double, double, int f) {
      switch (f) {
        case 0: return 1.0;
        case 1: return vx;
        case 2:
        case 3: return 0.0;
        default: return 1.0 / (gamma - 1.0) + 0.5 * vx * vx;
      }
    });
    auto before = driver.tracker()->particles();
    driver.step();
    const double dt = cfg.fixed_dt;
    for (const auto& p : driver.tracker()->particles()) {
      for (const auto& q : before) {
        if (q.id != p.id) continue;
        const double dx = p.x - q.x;
        EXPECT_NEAR(dx, vx * dt, 1e-8) << "particle " << p.id;
        EXPECT_GT(std::abs(dx - 1.0 * dt), 1e-5)
            << "particle " << p.id << " rode config.velocity";
      }
    }
  });
}

TEST(ParticleCarrier, AdvectionParticlesUseTheInterpolatedConstantField) {
  // Linear advection's carrier is constant, so the interpolated path must
  // land on the analytic translate to interpolation precision.
  cmtbone::comm::run(1, [](Comm& world) {
    Config cfg;
    cfg.physics = Physics::kAdvection;
    cfg.n = 4;
    cfg.ex = cfg.ey = cfg.ez = 2;
    cfg.fixed_dt = 1e-3;
    cfg.particles_per_rank = 8;
    Driver driver(world, cfg);
    driver.initialize(driver.default_ic());
    auto before = driver.tracker()->particles();
    driver.step();
    for (const auto& p : driver.tracker()->particles()) {
      for (const auto& q : before) {
        if (q.id != p.id) continue;
        EXPECT_NEAR(p.x - q.x, cfg.velocity[0] * cfg.fixed_dt, 1e-9);
        EXPECT_NEAR(p.y - q.y, cfg.velocity[1] * cfg.fixed_dt, 1e-9);
      }
    }
  });
}

TEST(ParticleCarrier, ParticlesRejectStretchedMeshes) {
  cmtbone::comm::run(1, [](Comm& world) {
    Config cfg;
    cfg.particles_per_rank = 4;
    cfg.mesh_map[0] = {cmtbone::mesh::AxisMapKind::kGeometric, 1.5, 1.0};
    EXPECT_THROW(Driver(world, cfg), std::invalid_argument);
  });
}

// ---------------------------------------------------------------------------
// Checkpoint compatibility: v3 proxy files still restore
// ---------------------------------------------------------------------------

TEST(CheckpointCompat, ProxyV3FilesRestoreBitIdentically) {
  cmtbone::comm::run(1, [](Comm& world) {
    Config cfg;  // proxy defaults, exactly the pre-pack configuration
    cfg.n = 4;
    cfg.ex = cfg.ey = cfg.ez = 2;
    cfg.fixed_dt = 1e-3;
    Driver writer(world, cfg);
    writer.initialize(writer.default_ic());
    writer.run(3);
    const std::vector<std::byte> bytes = writer.serialize_checkpoint(7);

    std::vector<std::vector<double>> fields;
    std::vector<std::int32_t> owner;
    const cmtbone::io::CheckpointHeader header =
        cmtbone::io::parse_checkpoint(bytes, "mem", &fields, &owner);
    EXPECT_EQ(header.version, 3u);
    EXPECT_EQ(header.nfields, 5);

    Driver reader(world, cfg);
    reader.restore_state(header, std::move(fields),
                         std::span<const std::int32_t>(owner));
    EXPECT_EQ(reader.steps_taken(), writer.steps_taken());
    EXPECT_DOUBLE_EQ(reader.time(), writer.time());
    for (int f = 0; f < writer.nfields(); ++f) {
      auto a = writer.field(f);
      auto b = reader.field(f);
      ASSERT_EQ(a.size(), b.size());
      EXPECT_EQ(0, std::memcmp(a.data(), b.data(), a.size() * sizeof(double)))
          << "field " << f;
    }
  });
}

}  // namespace
