#include "chaos_workloads.hpp"

#include <algorithm>
#include <cstring>
#include <map>
#include <sstream>
#include <stdexcept>

#include "comm/runtime.hpp"
#include "gs/crystal.hpp"
#include "gs/gather_scatter.hpp"
#include "util/rng.hpp"

namespace chaosws {

using cmtbone::comm::Comm;
using cmtbone::comm::ReduceOp;
using cmtbone::util::SplitMix64;

void require(bool ok, const std::string& msg) {
  if (!ok) throw std::runtime_error("chaos workload check failed: " + msg);
}

std::uint64_t run_with_chaos(int nranks, std::uint64_t seed,
                             const std::function<void(Comm&)>& body) {
  cmtbone::chaos::ChaosEngine engine(
      cmtbone::chaos::ChaosPolicy::for_seed(seed, nranks), nranks);
  cmtbone::comm::RunOptions options;
  options.chaos = &engine;
  cmtbone::comm::run(nranks, body, options);
  return engine.digest();
}

namespace {

long long encode(int src, int tag, int i) {
  return (long long)src * 1'000'000 + (long long)tag * 1'000 + i;
}

// --- p2p: many tags per pair; receivers assert per-(src,tag) FIFO ----------

void p2p_body(Comm& world) {
  const int p = world.size();
  const int me = world.rank();
  constexpr int kMsgs = 6;
  constexpr int kTags[] = {5, 9, 13};

  // Eager sends complete at post, so sending everything first cannot
  // deadlock regardless of how chaos delays the receivers.
  for (int d = 0; d < p; ++d) {
    if (d == me) continue;
    for (int tag : kTags) {
      for (int i = 0; i < kMsgs; ++i) {
        long long v = encode(me, tag, i);
        world.send(std::span<const long long>(&v, 1), d, tag);
      }
    }
  }
  for (int s = 0; s < p; ++s) {
    if (s == me) continue;
    for (int tag : kTags) {
      for (int i = 0; i < kMsgs; ++i) {
        long long v = -1;
        world.recv(std::span<long long>(&v, 1), s, tag);
        // FIFO within (source, tag): message i must arrive i-th.
        require(v == encode(s, tag, i), "p2p: out-of-order or corrupt message");
      }
    }
  }
}

// --- allreduce --------------------------------------------------------------

void allreduce_body(Comm& world) {
  const int p = world.size();
  const int me = world.rank();
  constexpr int kN = 17;

  std::vector<double> data(kN), want_sum(kN, 0.0), want_max(kN);
  for (int i = 0; i < kN; ++i) data[i] = 1.0 + me * 0.5 + i * 0.25;
  for (int i = 0; i < kN; ++i) {
    want_max[i] = 0.0;
    for (int r = 0; r < p; ++r) {
      double v = 1.0 + r * 0.5 + i * 0.25;
      want_sum[i] += v;
      want_max[i] = std::max(want_max[i], v);
    }
  }
  std::vector<double> sum = data;
  world.allreduce(std::span<double>(sum), ReduceOp::kSum);
  std::vector<double> mx = data;
  world.allreduce(std::span<double>(mx), ReduceOp::kMax);
  for (int i = 0; i < kN; ++i) {
    require(std::abs(sum[i] - want_sum[i]) < 1e-9, "allreduce: bad sum");
    require(mx[i] == want_max[i], "allreduce: bad max");
  }
  long long one = world.allreduce_one<long long>(me + 1, ReduceOp::kSum);
  require(one == (long long)p * (p + 1) / 2, "allreduce_one: bad scalar sum");
}

// --- alltoallv --------------------------------------------------------------

int a2a_count(int src, int dest) { return (src * 7 + dest * 3) % 5 + 1; }

void alltoallv_body(Comm& world) {
  const int p = world.size();
  const int me = world.rank();

  std::vector<long long> send;
  std::vector<int> counts(p);
  for (int d = 0; d < p; ++d) {
    counts[d] = a2a_count(me, d);
    for (int k = 0; k < counts[d]; ++k) send.push_back(encode(me, d, k));
  }
  std::vector<int> recv_counts;
  std::vector<long long> got = world.alltoallv(
      std::span<const long long>(send), std::span<const int>(counts),
      &recv_counts);

  require((int)recv_counts.size() == p, "alltoallv: recv_counts size");
  std::size_t off = 0;
  for (int s = 0; s < p; ++s) {
    require(recv_counts[s] == a2a_count(s, me), "alltoallv: bad recv count");
    for (int k = 0; k < recv_counts[s]; ++k) {
      require(got.at(off + k) == encode(s, me, k), "alltoallv: bad payload");
    }
    off += recv_counts[s];
  }
  require(off == got.size(), "alltoallv: trailing data");
}

// --- crystal router ---------------------------------------------------------

struct CrystalRec {
  int src;
  int dest;
  long long val;
};

std::vector<CrystalRec> crystal_records(int rank, int p, std::uint64_t seed) {
  SplitMix64 rng(cmtbone::util::rank_seed(seed ^ 0xc7a05ull, rank));
  int n = 3 + int(rng.next() % 6);
  std::vector<CrystalRec> recs(n);
  for (auto& r : recs) {
    r.src = rank;
    r.dest = int(rng.next() % std::uint64_t(p));
    r.val = (long long)(rng.next() & 0xffffffull);
  }
  return recs;
}

void crystal_body(Comm& world, std::uint64_t seed) {
  const int p = world.size();
  const int me = world.rank();

  std::vector<CrystalRec> recs = crystal_records(me, p, seed);
  std::vector<int> dest(recs.size());
  for (std::size_t i = 0; i < recs.size(); ++i) dest[i] = recs[i].dest;

  cmtbone::gs::CrystalRouter router(world);
  std::vector<CrystalRec> got = router.route_records(
      std::span<const CrystalRec>(recs), std::span<const int>(dest));

  // Oracle: regenerate every rank's records locally; the multiset of
  // records addressed to me must match what arrived (order unspecified).
  std::vector<CrystalRec> want;
  for (int r = 0; r < p; ++r) {
    for (const CrystalRec& rec : crystal_records(r, p, seed)) {
      if (rec.dest == me) want.push_back(rec);
    }
  }
  auto key = [](const CrystalRec& a, const CrystalRec& b) {
    return std::tie(a.src, a.dest, a.val) < std::tie(b.src, b.dest, b.val);
  };
  std::sort(got.begin(), got.end(), key);
  std::sort(want.begin(), want.end(), key);
  require(got.size() == want.size(), "crystal: record count");
  for (std::size_t i = 0; i < got.size(); ++i) {
    require(got[i].src == want[i].src && got[i].dest == want[i].dest &&
                got[i].val == want[i].val,
            "crystal: record content");
  }
}

// --- gather-scatter (one workload per nonlocal algorithm) -------------------

// Deterministic slot layout: ids drawn from a small global space so ranks
// share plenty of ids; includes local duplicates.
std::vector<long long> gs_slot_ids(int rank, int p, std::uint64_t seed) {
  SplitMix64 rng(cmtbone::util::rank_seed(seed ^ 0x95ull, rank));
  const long long global = 4 * p + 3;
  int n = 6 + int(rng.next() % 7);
  std::vector<long long> ids(n);
  for (auto& id : ids) id = (long long)(rng.next() % std::uint64_t(global));
  return ids;
}

double gs_slot_value(int rank, int slot) {
  return 1.0 + rank * 0.75 + slot * 0.125;
}

void gs_body(Comm& world, std::uint64_t seed, cmtbone::gs::Method method) {
  const int p = world.size();
  const int me = world.rank();

  std::vector<long long> ids = gs_slot_ids(me, p, seed);
  std::vector<double> values(ids.size());
  for (std::size_t i = 0; i < ids.size(); ++i) {
    values[i] = gs_slot_value(me, int(i));
  }

  // Oracle: every rank can regenerate the whole job's slots.
  std::map<long long, double> want;
  for (int r = 0; r < p; ++r) {
    std::vector<long long> rids = gs_slot_ids(r, p, seed);
    for (std::size_t i = 0; i < rids.size(); ++i) {
      want[rids[i]] += gs_slot_value(r, int(i));
    }
  }

  cmtbone::gs::GatherScatter gs(world, ids, method);
  gs.exec(std::span<double>(values), ReduceOp::kSum);
  for (std::size_t i = 0; i < ids.size(); ++i) {
    require(std::abs(values[i] - want.at(ids[i])) < 1e-9,
            "gs: reduced value mismatch");
  }
}

struct Workload {
  const char* name;
  int nranks;
  std::function<void(Comm&, std::uint64_t)> body;
};

const std::vector<Workload>& registry() {
  using cmtbone::gs::Method;
  static const std::vector<Workload> table = {
      {"p2p", 4, [](Comm& w, std::uint64_t) { p2p_body(w); }},
      {"allreduce", 5, [](Comm& w, std::uint64_t) { allreduce_body(w); }},
      {"alltoallv", 4, [](Comm& w, std::uint64_t) { alltoallv_body(w); }},
      {"crystal", 5, [](Comm& w, std::uint64_t s) { crystal_body(w, s); }},
      {"gs_pairwise", 4,
       [](Comm& w, std::uint64_t s) { gs_body(w, s, Method::kPairwise); }},
      {"gs_crystal", 4,
       [](Comm& w, std::uint64_t s) { gs_body(w, s, Method::kCrystalRouter); }},
      {"gs_allreduce", 4,
       [](Comm& w, std::uint64_t s) { gs_body(w, s, Method::kAllReduce); }},
  };
  return table;
}

}  // namespace

std::vector<std::string> workload_names() {
  std::vector<std::string> names;
  for (const Workload& w : registry()) names.emplace_back(w.name);
  return names;
}

std::uint64_t run_workload(const std::string& name, std::uint64_t seed) {
  for (const Workload& w : registry()) {
    if (name == w.name) {
      return run_with_chaos(w.nranks, seed,
                            [&](Comm& c) { w.body(c, seed); });
    }
  }
  throw std::runtime_error("unknown chaos workload: " + name);
}

std::uint64_t replay(const std::string& spec) {
  auto slash = spec.find('/');
  if (slash == std::string::npos || slash == 0 || slash + 1 >= spec.size()) {
    throw std::runtime_error("replay spec must be workload/seed, got: " + spec);
  }
  std::string name = spec.substr(0, slash);
  std::uint64_t seed = 0;
  std::istringstream in(spec.substr(slash + 1));
  in >> seed;
  if (in.fail() || !in.eof()) {
    throw std::runtime_error("replay spec has a malformed seed: " + spec);
  }
  return run_workload(name, seed);
}

}  // namespace chaosws
