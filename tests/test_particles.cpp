// Lagrangian particle tracking: interpolation accuracy, migration
// correctness, conservation of the particle population, driver coupling.

#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <mutex>
#include <set>

#include "util/rng.hpp"

#include "comm/runtime.hpp"
#include "core/driver.hpp"
#include "particles/tracker.hpp"

namespace {

using cmtbone::comm::Comm;
using cmtbone::mesh::BoxSpec;
using cmtbone::mesh::Partition;
using cmtbone::particles::Particle;
using cmtbone::particles::Tracker;

BoxSpec small_spec(int px, int py, int pz, int n = 4) {
  BoxSpec s;
  s.n = n;
  s.ex = 2 * px;
  s.ey = 2 * py;
  s.ez = 2 * pz;
  s.px = px;
  s.py = py;
  s.pz = pz;
  return s;
}

TEST(Tracker, SeedsInsideOwnBlockWithUniqueIds) {
  BoxSpec spec = small_spec(2, 2, 1);
  std::set<long long> all_ids;
  std::mutex mu;
  cmtbone::comm::run(spec.nranks(), [&](Comm& world) {
    Partition part(spec, world.rank());
    auto ops = cmtbone::sem::Operators::build(spec.n);
    Tracker tracker(world, part, ops);
    tracker.seed_random(25, 7);
    EXPECT_EQ(tracker.local_count(), 25u);
    EXPECT_EQ(tracker.total_count(), 25 * world.size());
    std::lock_guard<std::mutex> lock(mu);
    for (const Particle& p : tracker.particles()) {
      EXPECT_TRUE(tracker.owns(p.x, p.y, p.z));
      EXPECT_TRUE(all_ids.insert(p.id).second) << "duplicate id " << p.id;
    }
  });
  EXPECT_EQ(all_ids.size(), 25u * spec.nranks());
}

TEST(Tracker, UniformAdvectionMatchesAnalyticTranslate) {
  BoxSpec spec = small_spec(2, 1, 1);
  cmtbone::comm::run(spec.nranks(), [&](Comm& world) {
    Partition part(spec, world.rank());
    auto ops = cmtbone::sem::Operators::build(spec.n);
    Tracker tracker(world, part, ops);
    tracker.seed_random(10, 3);
    // Remember initial positions by id.
    std::map<long long, std::array<double, 3>> start;
    for (const Particle& p : tracker.particles()) {
      start[p.id] = {p.x, p.y, p.z};
    }
    auto all_start = world.allgatherv(
        std::span<const Particle>(tracker.particles()), nullptr);
    std::map<long long, std::array<double, 3>> global_start;
    for (const Particle& p : all_start) global_start[p.id] = {p.x, p.y, p.z};

    const std::array<double, 3> v = {0.31, -0.17, 0.05};
    const double dt = 0.05;
    const int steps = 12;
    for (int s = 0; s < steps; ++s) {
      tracker.advance(v, dt);
      tracker.migrate();
    }
    EXPECT_EQ(tracker.total_count(), 10 * world.size());
    auto wrap = [](double x) { return x - std::floor(x); };
    for (const Particle& p : tracker.particles()) {
      // Every particle is locally owned after migrate.
      EXPECT_TRUE(tracker.owns(p.x, p.y, p.z));
      auto s0 = global_start.at(p.id);
      EXPECT_NEAR(p.x, wrap(s0[0] + v[0] * dt * steps), 1e-12);
      EXPECT_NEAR(p.y, wrap(s0[1] + v[1] * dt * steps), 1e-12);
      EXPECT_NEAR(p.z, wrap(s0[2] + v[2] * dt * steps), 1e-12);
    }
  });
}

TEST(Tracker, MigrationShipsExactlyTheLeavers) {
  BoxSpec spec = small_spec(2, 1, 1);
  cmtbone::comm::run(2, [&](Comm& world) {
    Partition part(spec, world.rank());
    auto ops = cmtbone::sem::Operators::build(spec.n);
    Tracker tracker(world, part, ops);
    // Hand-place: one particle staying, one crossing to the other rank.
    auto& ps = tracker.mutable_particles();
    ps.clear();
    double my_x = world.rank() == 0 ? 0.25 : 0.75;
    double other_x = world.rank() == 0 ? 0.75 : 0.25;
    ps.push_back({world.rank() * 10 + 1, my_x, 0.5, 0.5});
    ps.push_back({world.rank() * 10 + 2, other_x, 0.5, 0.5});
    tracker.migrate();
    EXPECT_EQ(tracker.last_migrated(), 1u);
    ASSERT_EQ(tracker.local_count(), 2u);
    std::set<long long> ids;
    for (const Particle& p : tracker.particles()) {
      ids.insert(p.id);
      EXPECT_TRUE(tracker.owns(p.x, p.y, p.z));
    }
    int other = 1 - world.rank();
    EXPECT_TRUE(ids.count(world.rank() * 10 + 1));
    EXPECT_TRUE(ids.count(other * 10 + 2));
  });
}

TEST(Tracker, InterpolationIsExactForTensorPolynomials) {
  // The spectral basis represents degree < n polynomials exactly, so
  // interpolation at arbitrary points must reproduce them to round-off.
  BoxSpec spec = small_spec(1, 1, 1, /*n=*/5);
  cmtbone::comm::run(1, [&](Comm& world) {
    Partition part(spec, world.rank());
    auto ops = cmtbone::sem::Operators::build(spec.n);
    Tracker tracker(world, part, ops);

    auto f = [](double x, double y, double z) {
      return 1.0 + 3.0 * x - 2.0 * y * y + x * z + 0.5 * z * z * z;
    };
    // Fill a field with f at the GLL nodes.
    const int n = spec.n;
    std::vector<double> field(std::size_t(n) * n * n * part.nel());
    std::size_t idx = 0;
    for (int e = 0; e < part.nel(); ++e) {
      auto g = part.global_coords(e);
      for (int k = 0; k < n; ++k) {
        for (int j = 0; j < n; ++j) {
          for (int i = 0; i < n; ++i) {
            double x = (g[0] + 0.5 * (ops.rule.nodes[i] + 1.0)) / spec.ex;
            double y = (g[1] + 0.5 * (ops.rule.nodes[j] + 1.0)) / spec.ey;
            double z = (g[2] + 0.5 * (ops.rule.nodes[k] + 1.0)) / spec.ez;
            field[idx++] = f(x, y, z);
          }
        }
      }
    }
    cmtbone::util::SplitMix64 rng(11);
    for (int trial = 0; trial < 200; ++trial) {
      double x = rng.uniform(), y = rng.uniform(), z = rng.uniform();
      EXPECT_NEAR(tracker.interpolate(field.data(), x, y, z), f(x, y, z),
                  1e-11)
          << x << "," << y << "," << z;
    }
    // Node hits exercise the delta short-circuit.
    double xn = (0 + 0.5 * (ops.rule.nodes[2] + 1.0)) / spec.ex;
    EXPECT_NEAR(tracker.interpolate(field.data(), xn, 0.4, 0.6),
                f(xn, 0.4, 0.6), 1e-11);
  });
}

TEST(Tracker, InterpolatedUniformVelocityMatchesUniformAdvance) {
  BoxSpec spec = small_spec(2, 1, 1);
  cmtbone::comm::run(2, [&](Comm& world) {
    Partition part(spec, world.rank());
    auto ops = cmtbone::sem::Operators::build(spec.n);
    const std::size_t pts =
        std::size_t(spec.n) * spec.n * spec.n * part.nel();
    std::vector<double> vx(pts, 0.4), vy(pts, -0.2), vz(pts, 0.1);

    Tracker a(world, part, ops), b(world, part, ops);
    a.seed_random(8, 21);
    b.seed_random(8, 21);
    a.advance({0.4, -0.2, 0.1}, 0.03);
    b.advance_interpolated(vx.data(), vy.data(), vz.data(), 0.03);
    ASSERT_EQ(a.local_count(), b.local_count());
    for (std::size_t i = 0; i < a.local_count(); ++i) {
      EXPECT_NEAR(a.particles()[i].x, b.particles()[i].x, 1e-12);
      EXPECT_NEAR(a.particles()[i].y, b.particles()[i].y, 1e-12);
      EXPECT_NEAR(a.particles()[i].z, b.particles()[i].z, 1e-12);
    }
  });
}

// --- deposition (two-way coupling) -----------------------------------------------

TEST(Tracker, DepositConservesTotalStrength) {
  // Nodal weights are a partition of unity, so the raw nodal sum of the
  // deposited field equals the total strength put in.
  BoxSpec spec = small_spec(1, 1, 1, 4);
  cmtbone::comm::run(1, [&](Comm& world) {
    Partition part(spec, world.rank());
    auto ops = cmtbone::sem::Operators::build(spec.n);
    Tracker tracker(world, part, ops);
    tracker.seed_random(37, 5);
    std::vector<double> field(
        std::size_t(spec.n) * spec.n * spec.n * part.nel(), 0.0);
    tracker.deposit_all(field.data(), 2.5);
    double total = 0.0;
    for (double v : field) total += v;
    EXPECT_NEAR(total, 37 * 2.5, 1e-9);
  });
}

TEST(Tracker, DepositAtNodeIsADelta) {
  BoxSpec spec = small_spec(1, 1, 1, 3);
  cmtbone::comm::run(1, [&](Comm& world) {
    Partition part(spec, world.rank());
    auto ops = cmtbone::sem::Operators::build(spec.n);
    Tracker tracker(world, part, ops);
    const int n = spec.n;
    std::vector<double> field(std::size_t(n) * n * n * part.nel(), 0.0);
    // Exactly on the interior node (1,1,1) of element (0,0,0) — endpoint
    // nodes belong to two elements and would deposit into the neighbor.
    double x = (0 + 0.5 * (ops.rule.nodes[1] + 1.0)) / spec.ex;
    double y = (0 + 0.5 * (ops.rule.nodes[1] + 1.0)) / spec.ey;
    double z = (0 + 0.5 * (ops.rule.nodes[1] + 1.0)) / spec.ez;
    tracker.deposit(field.data(), x, y, z, 4.0);
    int e = part.local_index(0, 0, 0);
    std::size_t idx = std::size_t(e) * n * n * n + 1 + n * (1 + std::size_t(n) * 1);
    EXPECT_NEAR(field[idx], 4.0, 1e-12);
    double total = 0.0;
    for (double v : field) total += v;
    EXPECT_NEAR(total, 4.0, 1e-12);
  });
}

TEST(Tracker, DepositInterpolateDualityForConstantField) {
  // <deposit(delta_p), 1> pairing: interpolating the constant 1 at any
  // position returns 1, the dual statement of partition-of-unity deposit.
  BoxSpec spec = small_spec(1, 1, 1, 5);
  cmtbone::comm::run(1, [&](Comm& world) {
    Partition part(spec, world.rank());
    auto ops = cmtbone::sem::Operators::build(spec.n);
    Tracker tracker(world, part, ops);
    std::vector<double> ones(
        std::size_t(spec.n) * spec.n * spec.n * part.nel(), 1.0);
    cmtbone::util::SplitMix64 rng(3);
    for (int i = 0; i < 50; ++i) {
      EXPECT_NEAR(tracker.interpolate(ones.data(), rng.uniform(),
                                      rng.uniform(), rng.uniform()),
                  1.0, 1e-11);
    }
  });
}

// --- driver coupling -----------------------------------------------------------

TEST(DriverParticles, CouplingInjectsMomentumSource) {
  // With coupling on, x-momentum grows by roughly
  // particles * strength * dt per step (RK convexity preserves the rate).
  cmtbone::comm::run(2, [](Comm& world) {
    cmtbone::core::Config cfg;
    cfg.n = 4;
    cfg.ex = cfg.ey = cfg.ez = 2;
    cfg.fixed_dt = 1e-3;
    cfg.particles_per_rank = 10;
    cfg.particle_coupling = 0.5;
    cfg.use_dssum = false;
    cmtbone::core::Driver driver(world, cfg);
    driver.initialize(driver.default_ic());
    double before = driver.integral(1);
    driver.run(4);
    double after = driver.integral(1);
    // 20 particles x 0.5 strength: nodal sources integrate against the
    // quadrature weights, so the momentum integral must strictly grow.
    EXPECT_GT(after, before);
  });
}

TEST(DriverParticles, PopulationConservedThroughManySteps) {
  cmtbone::comm::run(4, [](Comm& world) {
    cmtbone::core::Config cfg;
    cfg.n = 4;
    cfg.ex = cfg.ey = cfg.ez = 2;
    cfg.fixed_dt = 5e-3;
    cfg.particles_per_rank = 20;
    cmtbone::core::Driver driver(world, cfg);
    driver.initialize(driver.default_ic());
    ASSERT_NE(driver.tracker(), nullptr);
    EXPECT_EQ(driver.tracker()->total_count(), 80);
    driver.run(8);
    EXPECT_EQ(driver.tracker()->total_count(), 80);
    for (const Particle& p : driver.tracker()->particles()) {
      EXPECT_TRUE(driver.tracker()->owns(p.x, p.y, p.z));
    }
  });
}

TEST(DriverParticles, EulerModeUsesInterpolatedFlow) {
  cmtbone::comm::run(2, [](Comm& world) {
    cmtbone::core::Config cfg;
    cfg.physics = cmtbone::core::Physics::kEuler;
    cfg.n = 4;
    cfg.ex = cfg.ey = cfg.ez = 2;
    cfg.use_dssum = false;
    cfg.cfl = 0.2;
    cfg.particles_per_rank = 10;
    cmtbone::core::Driver driver(world, cfg);
    driver.initialize(driver.default_ic());
    driver.run(4);
    EXPECT_EQ(driver.tracker()->total_count(), 20);
  });
}

TEST(DriverParticles, OffByDefault) {
  cmtbone::comm::run(1, [](Comm& world) {
    cmtbone::core::Config cfg;
    cfg.n = 4;
    cfg.ex = cfg.ey = cfg.ez = 2;
    cmtbone::core::Driver driver(world, cfg);
    EXPECT_EQ(driver.tracker(), nullptr);
  });
}

}  // namespace
