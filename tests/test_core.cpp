// The CMT-bone driver: DG advection correctness, conservation, Euler
// stability, proxy behavior, parallel/serial agreement.

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "comm/runtime.hpp"
#include "core/driver.hpp"

namespace {

using cmtbone::comm::Comm;
using cmtbone::core::Config;
using cmtbone::core::Driver;
using cmtbone::core::Physics;

Config advection_config(int n, int e, double cfl = 0.25) {
  Config cfg;
  cfg.physics = Physics::kAdvection;
  cfg.n = n;
  cfg.ex = cfg.ey = cfg.ez = e;
  cfg.cfl = cfl;
  cfg.use_dssum = false;  // pure DG: keep the discontinuous solution intact
  return cfg;
}

TEST(Driver, InitializeSetsFieldsFromCallback) {
  cmtbone::comm::run(1, [](Comm& world) {
    Config cfg = advection_config(4, 2);
    Driver driver(world, cfg);
    driver.initialize([](double x, double y, double z, int) {
      return x + 10 * y + 100 * z;
    });
    auto u = driver.field(0);
    auto c = driver.node_coords(0, 1, 2, 3);
    // Spot-check one node.
    const int n = 4;
    std::size_t idx = 1 + n * (2 + std::size_t(n) * 3);
    EXPECT_NEAR(u[idx], c[0] + 10 * c[1] + 100 * c[2], 1e-13);
  });
}

TEST(Driver, NodeCoordsCoverUnitBox) {
  cmtbone::comm::run(2, [](Comm& world) {
    Config cfg = advection_config(5, 2);
    Driver driver(world, cfg);
    const auto& part = driver.partition();
    for (int e = 0; e < part.nel(); ++e) {
      for (int idx : {0, 4}) {
        auto c = driver.node_coords(e, idx, idx, idx);
        for (double x : c) {
          EXPECT_GE(x, 0.0);
          EXPECT_LE(x, 1.0);
        }
      }
    }
  });
}

TEST(Driver, AdvectionConservesIntegral) {
  // Periodic DG advection conserves the total integral to round-off.
  cmtbone::comm::run(1, [](Comm& world) {
    Config cfg = advection_config(6, 2);
    Driver driver(world, cfg);
    driver.initialize(driver.default_ic());
    double before = driver.integral(0);
    driver.run(10);
    double after = driver.integral(0);
    EXPECT_NEAR(after, before, 1e-11 * std::abs(before));
  });
}

TEST(Driver, AdvectionMatchesAnalyticTranslate) {
  // u(x, t) = u0(x - c t): after time t the solution is a periodic shift.
  cmtbone::comm::run(1, [](Comm& world) {
    Config cfg = advection_config(8, 2);
    cfg.velocity = {1.0, 0.5, 0.25};
    Driver driver(world, cfg);
    auto ic = driver.default_ic();
    driver.initialize(ic);
    driver.run(40);
    const double t = driver.time();
    auto wrap = [](double v) { return v - std::floor(v); };
    double err = driver.linf_error([&](double x, double y, double z, int f) {
      return ic(wrap(x - 1.0 * t), wrap(y - 0.5 * t), wrap(z - 0.25 * t), f);
    });
    EXPECT_LT(err, 2e-4);
  });
}

TEST(Driver, AdvectionSpectralConvergenceInN) {
  // Increasing N at fixed elements must shrink the error fast (spectral).
  cmtbone::comm::run(1, [](Comm& world) {
    std::vector<double> errs;
    for (int n : {4, 6, 8}) {
      Config cfg = advection_config(n, 2);
      cfg.fixed_dt = 2e-3;  // keep time error below the spatial error
      Driver driver(world, cfg);
      auto ic = driver.default_ic();
      driver.initialize(ic);
      driver.run(25);
      const double t = driver.time();
      auto wrap = [](double v) { return v - std::floor(v); };
      errs.push_back(
          driver.linf_error([&](double x, double y, double z, int f) {
            return ic(wrap(x - 1.0 * t), wrap(y - 0.5 * t), wrap(z - 0.25 * t),
                      f);
          }));
    }
    EXPECT_LT(errs[1], errs[0] * 0.2);
    EXPECT_LT(errs[2], errs[1] * 0.5);
  });
}

TEST(Driver, ParallelRunMatchesSerialRun) {
  // 4 ranks vs 1 rank, same global problem: identical trajectories up to
  // reduction rounding.
  Config cfg = advection_config(5, 4);
  cfg.fixed_dt = 1e-3;

  std::vector<double> serial_norm(1);
  cmtbone::comm::run(1, [&](Comm& world) {
    Driver driver(world, cfg);
    driver.initialize(driver.default_ic());
    driver.run(5);
    serial_norm[0] = driver.l2_norm(0);
  });
  cmtbone::comm::run(4, [&](Comm& world) {
    Driver driver(world, cfg);
    driver.initialize(driver.default_ic());
    driver.run(5);
    double parallel = driver.l2_norm(0);
    EXPECT_NEAR(parallel, serial_norm[0], 1e-10 * serial_norm[0]);
  });
}

TEST(Driver, ProxyModeAdvectsFiveFields) {
  cmtbone::comm::run(2, [](Comm& world) {
    Config cfg;
    cfg.physics = Physics::kProxyAdvection;
    cfg.n = 5;
    cfg.ex = cfg.ey = cfg.ez = 2;
    cfg.use_dssum = true;
    Driver driver(world, cfg);
    EXPECT_EQ(driver.nfields(), 5);
    driver.initialize(driver.default_ic());
    std::vector<double> before(5);
    for (int f = 0; f < 5; ++f) before[f] = driver.integral(f);
    driver.run(3);
    for (int f = 0; f < 5; ++f) {
      double after = driver.integral(f);
      EXPECT_NEAR(after, before[f], 1e-9 * std::abs(before[f]))
          << "field " << f;
      EXPECT_TRUE(std::isfinite(driver.l2_norm(f)));
    }
  });
}

TEST(Driver, DssumKeepsFieldsFiniteAndConservative) {
  cmtbone::comm::run(2, [](Comm& world) {
    Config cfg;
    cfg.physics = Physics::kProxyAdvection;
    cfg.n = 4;
    cfg.ex = cfg.ey = cfg.ez = 2;
    cfg.use_dssum = true;
    cfg.gs_method = cmtbone::gs::Method::kCrystalRouter;
    Driver driver(world, cfg);
    driver.initialize(driver.default_ic());
    driver.run(4);
    for (int f = 0; f < 5; ++f) {
      EXPECT_TRUE(std::isfinite(driver.l2_norm(f)));
    }
  });
}

TEST(Driver, EulerUniformFlowIsSteady) {
  // A spatially uniform state is an exact steady solution of the Euler
  // equations; the discrete operator must preserve it to round-off.
  cmtbone::comm::run(1, [](Comm& world) {
    Config cfg;
    cfg.physics = Physics::kEuler;
    cfg.n = 5;
    cfg.ex = cfg.ey = cfg.ez = 2;
    cfg.use_dssum = false;
    Driver driver(world, cfg);
    driver.initialize([](double, double, double, int f) {
      switch (f) {
        case 0: return 1.0;
        case 1: return 0.3;
        case 2: return -0.1;
        case 3: return 0.2;
        default: return 2.5;
      }
    });
    driver.run(5);
    double err = driver.linf_error([](double, double, double, int f) {
      switch (f) {
        case 0: return 1.0;
        case 1: return 0.3;
        case 2: return -0.1;
        case 3: return 0.2;
        default: return 2.5;
      }
    });
    EXPECT_LT(err, 1e-11);
  });
}

TEST(Driver, EulerSmoothFlowConservesMassMomentumEnergy) {
  cmtbone::comm::run(1, [](Comm& world) {
    Config cfg;
    cfg.physics = Physics::kEuler;
    cfg.n = 6;
    cfg.ex = cfg.ey = cfg.ez = 2;
    cfg.cfl = 0.2;
    cfg.use_dssum = false;
    Driver driver(world, cfg);
    driver.initialize(driver.default_ic());
    std::vector<double> before(5);
    for (int f = 0; f < 5; ++f) before[f] = driver.integral(f);
    driver.run(10);
    for (int f = 0; f < 5; ++f) {
      double after = driver.integral(f);
      double scale = std::max(1.0, std::abs(before[f]));
      EXPECT_NEAR(after, before[f], 1e-10 * scale) << "field " << f;
      EXPECT_TRUE(std::isfinite(driver.l2_norm(f)));
    }
  });
}

TEST(Driver, ComputeDtScalesWithCfl) {
  cmtbone::comm::run(1, [](Comm& world) {
    Config cfg = advection_config(5, 2);
    Driver driver(world, cfg);
    driver.initialize(driver.default_ic());
    double dt1 = driver.compute_dt();
    Config cfg2 = cfg;
    cfg2.cfl = 2 * cfg.cfl;
    Driver driver2(world, cfg2);
    driver2.initialize(driver2.default_ic());
    EXPECT_NEAR(driver2.compute_dt(), 2 * dt1, 1e-14);
    EXPECT_GT(dt1, 0.0);
  });
}

TEST(Driver, FixedDtOverridesCfl) {
  cmtbone::comm::run(1, [](Comm& world) {
    Config cfg = advection_config(5, 2);
    cfg.fixed_dt = 1.25e-3;
    Driver driver(world, cfg);
    driver.initialize(driver.default_ic());
    EXPECT_DOUBLE_EQ(driver.compute_dt(), 1.25e-3);
    driver.run(4);
    EXPECT_NEAR(driver.time(), 4 * 1.25e-3, 1e-15);
  });
}

TEST(Driver, VariantsProduceSameTrajectory) {
  // The loop-transformation variants are numerically interchangeable.
  Config base = advection_config(5, 2);
  base.fixed_dt = 1e-3;
  std::vector<double> norms;
  for (auto v : cmtbone::kernels::all_variants()) {
    cmtbone::comm::run(1, [&](Comm& world) {
      Config cfg = base;
      cfg.variant = v;
      Driver driver(world, cfg);
      driver.initialize(driver.default_ic());
      driver.run(5);
      norms.push_back(driver.l2_norm(0));
    });
  }
  for (std::size_t i = 1; i < norms.size(); ++i) {
    EXPECT_NEAR(norms[i], norms[0], 1e-11 * norms[0]);
  }
}

TEST(Driver, DealiasPathRuns) {
  cmtbone::comm::run(1, [](Comm& world) {
    Config cfg;
    cfg.physics = Physics::kProxyAdvection;
    cfg.n = 5;
    cfg.ex = cfg.ey = cfg.ez = 2;
    cfg.dealias = true;
    Driver driver(world, cfg);
    driver.initialize(driver.default_ic());
    driver.run(2);
    EXPECT_TRUE(std::isfinite(driver.l2_norm(4)));
  });
}

TEST(Driver, FusedDivergenceMatchesSeparateSweeps) {
  // The fused div3 volume term must reproduce the three-sweep trajectory
  // for both linear and Euler fluxes.
  for (auto physics : {Physics::kAdvection, Physics::kEuler}) {
    std::vector<double> separate, fused;
    for (bool use_fused : {false, true}) {
      cmtbone::comm::run(2, [&](Comm& world) {
        Config cfg;
        cfg.physics = physics;
        cfg.n = 5;
        cfg.ex = cfg.ey = cfg.ez = 2;
        cfg.use_dssum = false;
        cfg.fixed_dt = 1e-3;
        cfg.fused_divergence = use_fused;
        Driver driver(world, cfg);
        driver.initialize(driver.default_ic());
        driver.run(3);
        if (world.rank() == 0) {
          auto f = driver.field(0);
          auto& out = use_fused ? fused : separate;
          out.assign(f.begin(), f.end());
        }
      });
    }
    ASSERT_EQ(separate.size(), fused.size());
    for (std::size_t i = 0; i < separate.size(); ++i) {
      ASSERT_NEAR(fused[i], separate[i], 1e-12)
          << cmtbone::core::physics_name(physics) << " index " << i;
    }
  }
}

// --- face-exchange backends -----------------------------------------------------

class FaceBackends : public ::testing::TestWithParam<int> {};

TEST_P(FaceBackends, GsBackendMatchesDirectBackendExactly) {
  // Identical runs through both exchange paths must produce identical
  // trajectories (the gs path computes neighbor = (mine+nbr) - mine).
  const int ranks = GetParam();
  Config base = advection_config(5, 2);
  base.fixed_dt = 1e-3;

  std::vector<double> direct, via_gs;
  for (auto backend : {cmtbone::core::FaceBackend::kDirect,
                       cmtbone::core::FaceBackend::kGatherScatter}) {
    cmtbone::comm::run(ranks, [&](Comm& world) {
      Config cfg = base;
      cfg.face_backend = backend;
      Driver driver(world, cfg);
      driver.initialize(driver.default_ic());
      driver.run(4);
      if (world.rank() == 0) {
        auto f = driver.field(0);
        auto& out = backend == cmtbone::core::FaceBackend::kDirect ? direct
                                                                    : via_gs;
        out.assign(f.begin(), f.end());
      }
    });
  }
  ASSERT_EQ(direct.size(), via_gs.size());
  for (std::size_t i = 0; i < direct.size(); ++i) {
    // The gs path introduces one extra add/subtract per face value.
    ASSERT_NEAR(via_gs[i], direct[i], 1e-12) << "index " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Ranks, FaceBackends, ::testing::Values(1, 2, 4));

TEST(FaceBackends, GsBackendHandlesNonPeriodicBoundaries) {
  cmtbone::comm::run(2, [](Comm& world) {
    Config cfg = advection_config(4, 2);
    cfg.periodic = false;
    cfg.fixed_dt = 1e-3;
    cfg.face_backend = cmtbone::core::FaceBackend::kGatherScatter;
    Driver driver(world, cfg);
    driver.initialize(driver.default_ic());
    driver.run(3);
    EXPECT_TRUE(std::isfinite(driver.l2_norm(0)));
  });
}

TEST(FaceBackends, GsBackendWorksWithEulerAndCrystalRouter) {
  cmtbone::comm::run(2, [](Comm& world) {
    Config cfg;
    cfg.physics = Physics::kEuler;
    cfg.n = 4;
    cfg.ex = cfg.ey = cfg.ez = 2;
    cfg.use_dssum = false;
    cfg.face_backend = cmtbone::core::FaceBackend::kGatherScatter;
    cfg.gs_method = cmtbone::gs::Method::kCrystalRouter;
    Driver driver(world, cfg);
    driver.initialize(driver.default_ic());
    double before = driver.integral(0);
    driver.run(3);
    EXPECT_NEAR(driver.integral(0), before, 1e-10 * std::abs(before));
  });
}

// --- time integrators ---------------------------------------------------------

namespace integrators {

// Linf error of advection after fixed total time with the given integrator
// and step count (error is measured against the exact translate, so it
// contains both spatial and temporal parts; N is high enough that the
// temporal part dominates at these dt).
double advection_error(cmtbone::comm::Comm& world,
                       cmtbone::core::TimeIntegrator ti, int steps,
                       double total_time) {
  Config cfg = advection_config(8, 2);
  cfg.integrator = ti;
  cfg.fixed_dt = total_time / steps;
  Driver driver(world, cfg);
  auto ic = driver.default_ic();
  driver.initialize(ic);
  driver.run(steps);
  const double t = driver.time();
  auto wrap = [](double v) { return v - std::floor(v); };
  return driver.linf_error([&](double x, double y, double z, int f) {
    return ic(wrap(x - 1.0 * t), wrap(y - 0.5 * t), wrap(z - 0.25 * t), f);
  });
}

}  // namespace integrators

TEST(Integrators, MetadataConsistent) {
  using cmtbone::core::TimeIntegrator;
  using cmtbone::core::integrator_order;
  using cmtbone::core::integrator_stages;
  EXPECT_EQ(integrator_stages(TimeIntegrator::kForwardEuler), 1);
  EXPECT_EQ(integrator_stages(TimeIntegrator::kRk3Ssp), 3);
  EXPECT_EQ(integrator_order(TimeIntegrator::kRk4), 4);
  EXPECT_STREQ(cmtbone::core::integrator_name(TimeIntegrator::kRk2Ssp),
               "ssp-rk2");
}

TEST(Integrators, TemporalOrderEulerAndRk2) {
  // Halving dt must cut the error by ~2^order while temporal error
  // dominates. Generous brackets absorb the spatial floor.
  cmtbone::comm::run(1, [](Comm& world) {
    using cmtbone::core::TimeIntegrator;
    const double time = 0.04;
    double e1 = integrators::advection_error(world, TimeIntegrator::kForwardEuler,
                                             8, time);
    double e2 = integrators::advection_error(world, TimeIntegrator::kForwardEuler,
                                             16, time);
    double ratio = e1 / e2;
    EXPECT_GT(ratio, 1.6);
    EXPECT_LT(ratio, 2.6);

    // Larger dt pair for RK2 so its (smaller) temporal error stays above
    // the spatial floor of the N=8 discretization.
    double h1 =
        integrators::advection_error(world, TimeIntegrator::kRk2Ssp, 4, time);
    double h2 =
        integrators::advection_error(world, TimeIntegrator::kRk2Ssp, 8, time);
    double hratio = h1 / h2;
    EXPECT_GT(hratio, 3.0);
    EXPECT_LT(hratio, 5.5);
  });
}

TEST(Integrators, HigherOrderIsMoreAccurateAtSameDt) {
  cmtbone::comm::run(1, [](Comm& world) {
    using cmtbone::core::TimeIntegrator;
    const double time = 0.04;
    double euler = integrators::advection_error(
        world, TimeIntegrator::kForwardEuler, 10, time);
    double rk2 =
        integrators::advection_error(world, TimeIntegrator::kRk2Ssp, 10, time);
    double rk3 =
        integrators::advection_error(world, TimeIntegrator::kRk3Ssp, 10, time);
    double rk4 =
        integrators::advection_error(world, TimeIntegrator::kRk4, 10, time);
    EXPECT_LT(rk2, euler);
    EXPECT_LT(rk3, rk2);
    EXPECT_LE(rk4, rk3 * 1.05);  // rk4 may sit on the spatial floor
  });
}

TEST(Integrators, AllConserveTheIntegral) {
  cmtbone::comm::run(1, [](Comm& world) {
    using cmtbone::core::TimeIntegrator;
    for (auto ti : {TimeIntegrator::kForwardEuler, TimeIntegrator::kRk2Ssp,
                    TimeIntegrator::kRk3Ssp, TimeIntegrator::kRk4}) {
      Config cfg = advection_config(5, 2);
      cfg.integrator = ti;
      cfg.fixed_dt = 1e-3;
      Driver driver(world, cfg);
      driver.initialize(driver.default_ic());
      double before = driver.integral(0);
      driver.run(5);
      EXPECT_NEAR(driver.integral(0), before, 1e-11 * std::abs(before))
          << cmtbone::core::integrator_name(ti);
    }
  });
}

TEST(Driver, NonPeriodicAdvectionRunsStably) {
  cmtbone::comm::run(2, [](Comm& world) {
    Config cfg = advection_config(5, 2);
    cfg.periodic = false;  // mirrored physical boundaries
    cfg.cfl = 0.2;
    Driver driver(world, cfg);
    driver.initialize(driver.default_ic());
    driver.run(5);
    EXPECT_TRUE(std::isfinite(driver.l2_norm(0)));
  });
}

TEST(Driver, ExplicitProcessorGridIsHonored) {
  cmtbone::comm::run(4, [](Comm& world) {
    Config cfg = advection_config(4, 4);
    cfg.px = 4;
    cfg.py = 1;
    cfg.pz = 1;  // slab decomposition instead of the default 2x2x1
    Driver driver(world, cfg);
    const auto& part = driver.partition();
    EXPECT_EQ(part.spec().px, 4);
    EXPECT_EQ(part.nelx(), 1);
    EXPECT_EQ(part.nely(), 4);
    driver.initialize(driver.default_ic());
    driver.run(2);
    EXPECT_TRUE(std::isfinite(driver.l2_norm(0)));
  });
}

TEST(Driver, AnisotropicElementGrid) {
  // Non-cubic global grids (the Fig. 7 geometry is 40x40x16) must work.
  cmtbone::comm::run(2, [](Comm& world) {
    Config cfg;
    cfg.physics = Physics::kAdvection;
    cfg.n = 4;
    cfg.ex = 4;
    cfg.ey = 2;
    cfg.ez = 1;
    cfg.use_dssum = false;
    cfg.fixed_dt = 5e-4;
    Driver driver(world, cfg);
    driver.initialize(driver.default_ic());
    double before = driver.integral(0);
    driver.run(4);
    EXPECT_NEAR(driver.integral(0), before, 1e-11 * std::abs(before));
  });
}

TEST(Driver, FlopsAccountingMatchesFaceBytes) {
  cmtbone::comm::run(2, [](Comm& world) {
    Config cfg = advection_config(5, 2);
    Driver driver(world, cfg);
    // 2 ranks: each owns a 1x2x2 block of 2x2x2 elements... (px,py,pz)
    // auto-derived as 2x1x1, so each rank owns 1x2x2 = 4 elements.
    EXPECT_GT(driver.face_bytes_per_rhs(), 0);
    EXPECT_GT(driver.flops_per_rhs(), 0);
  });
}

TEST(Driver, MismatchedProcessorGridThrows) {
  cmtbone::comm::run(2, [](Comm& world) {
    Config cfg = advection_config(4, 2);
    cfg.px = 3;
    cfg.py = 1;
    cfg.pz = 1;  // 3 != comm size 2
    EXPECT_THROW(Driver(world, cfg), std::invalid_argument);
  });
}

}  // namespace
