// Cross-module integration: full pipelines through comm + mesh + gs +
// kernels + core/nekbone together.

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "comm/runtime.hpp"
#include "core/driver.hpp"
#include "nekbone/nekbone.hpp"

namespace {

using cmtbone::comm::Comm;
using cmtbone::core::Config;
using cmtbone::core::Driver;
using cmtbone::core::Physics;

struct PipelineCase {
  Physics physics;
  cmtbone::gs::Method gs_method;
  cmtbone::core::TimeIntegrator integrator;
  int ranks;
};

class Pipeline : public ::testing::TestWithParam<PipelineCase> {};

TEST_P(Pipeline, RunsStableAndConservative) {
  const PipelineCase& c = GetParam();
  cmtbone::comm::run(c.ranks, [&](Comm& world) {
    Config cfg;
    cfg.physics = c.physics;
    cfg.gs_method = c.gs_method;
    cfg.integrator = c.integrator;
    cfg.n = 5;
    cfg.ex = cfg.ey = cfg.ez = 2;
    cfg.use_dssum = c.physics == Physics::kProxyAdvection;
    cfg.cfl = 0.2;
    Driver driver(world, cfg);
    driver.initialize(driver.default_ic());
    std::vector<double> before(driver.nfields());
    for (int f = 0; f < driver.nfields(); ++f) before[f] = driver.integral(f);
    driver.run(3);
    for (int f = 0; f < driver.nfields(); ++f) {
      double after = driver.integral(f);
      double scale = std::max(1.0, std::abs(before[f]));
      EXPECT_NEAR(after, before[f], 1e-9 * scale) << "field " << f;
      EXPECT_TRUE(std::isfinite(driver.l2_norm(f)));
    }
  });
}

std::vector<PipelineCase> pipeline_cases() {
  using TI = cmtbone::core::TimeIntegrator;
  using M = cmtbone::gs::Method;
  std::vector<PipelineCase> cases;
  for (Physics ph : {Physics::kProxyAdvection, Physics::kAdvection,
                     Physics::kEuler}) {
    for (M m : {M::kPairwise, M::kCrystalRouter}) {
      for (int ranks : {1, 4}) {
        cases.push_back({ph, m, TI::kRk3Ssp, ranks});
      }
    }
  }
  // A couple of integrator variations on the proxy path.
  cases.push_back({Physics::kProxyAdvection, M::kPairwise, TI::kRk4, 2});
  cases.push_back({Physics::kProxyAdvection, M::kAllReduce, TI::kRk2Ssp, 2});
  return cases;
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, Pipeline, ::testing::ValuesIn(pipeline_cases()),
    [](const ::testing::TestParamInfo<PipelineCase>& info) {
      const PipelineCase& c = info.param;
      std::string name = cmtbone::core::physics_name(c.physics);
      name += c.gs_method == cmtbone::gs::Method::kPairwise       ? "_pw"
              : c.gs_method == cmtbone::gs::Method::kCrystalRouter ? "_cr"
                                                                    : "_ar";
      name += "_" + std::string(cmtbone::core::integrator_name(c.integrator));
      name += "_r" + std::to_string(c.ranks);
      for (char& ch : name) {
        if (ch == '-') ch = '_';
      }
      return name;
    });

TEST(Integration, RunsAreBitwiseDeterministic) {
  // Two identical runs produce identical fields (fixed dt avoids timing-
  // dependent reductions; the comm runtime itself must be deterministic).
  auto run_once = [](std::vector<double>* out) {
    cmtbone::comm::run(4, [&](Comm& world) {
      Config cfg;
      cfg.n = 5;
      cfg.ex = cfg.ey = cfg.ez = 2;
      cfg.fixed_dt = 1e-3;
      Driver driver(world, cfg);
      driver.initialize(driver.default_ic());
      driver.run(4);
      if (world.rank() == 2) {
        auto f = driver.field(0);
        out->assign(f.begin(), f.end());
      }
    });
  };
  std::vector<double> a, b;
  run_once(&a);
  run_once(&b);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a[i], b[i]) << "index " << i;
  }
}

TEST(Integration, DriverAndNekboneShareOneJob) {
  // Both mini-apps build their own gs handles and exchange plans inside the
  // same parallel job (the Fig. 7 measurement pattern) without interfering.
  cmtbone::comm::run(4, [](Comm& world) {
    Config cfg;
    cfg.n = 4;
    cfg.ex = cfg.ey = cfg.ez = 2;
    Driver driver(world, cfg);
    driver.initialize(driver.default_ic());

    cmtbone::nekbone::NekboneConfig ncfg;
    ncfg.n = 4;
    ncfg.ex = ncfg.ey = ncfg.ez = 2;
    cmtbone::nekbone::Nekbone nb(world, ncfg);

    driver.run(2);
    for (int i = 0; i < 2; ++i) nb.proxy_iteration();
    driver.run(2);

    EXPECT_TRUE(std::isfinite(driver.l2_norm(0)));
  });
}

TEST(Integration, SplitCommunicatorsRunIndependentSolvers) {
  // Two halves of the job run two independent problems concurrently on
  // split communicators; results must match the same problems run alone.
  std::vector<double> alone(2, 0.0);
  for (int half = 0; half < 2; ++half) {
    cmtbone::comm::run(2, [&](Comm& world) {
      Config cfg;
      cfg.n = 4 + half;
      cfg.ex = cfg.ey = cfg.ez = 2;
      cfg.fixed_dt = 1e-3;
      Driver driver(world, cfg);
      driver.initialize(driver.default_ic());
      driver.run(3);
      double norm = driver.l2_norm(0);
      if (world.rank() == 0) alone[half] = norm;
    });
  }
  cmtbone::comm::run(4, [&](Comm& world) {
    int half = world.rank() / 2;
    Comm sub = world.split(half, world.rank());
    Config cfg;
    cfg.n = 4 + half;
    cfg.ex = cfg.ey = cfg.ez = 2;
    cfg.fixed_dt = 1e-3;
    Driver driver(sub, cfg);
    driver.initialize(driver.default_ic());
    driver.run(3);
    double norm = driver.l2_norm(0);
    if (sub.rank() == 0) {
      EXPECT_NEAR(norm, alone[half], 1e-12 * std::max(1.0, alone[half]));
    }
  });
}

TEST(Integration, NekboneSolutionFeedsDriverInitialCondition) {
  // Use a Nekbone CG solution as the driver's initial condition — the
  // cross-library data path a coupled application would use.
  cmtbone::comm::run(2, [](Comm& world) {
    cmtbone::nekbone::NekboneConfig ncfg;
    ncfg.n = 5;
    ncfg.ex = ncfg.ey = ncfg.ez = 2;
    ncfg.h2 = 1.0;
    cmtbone::nekbone::Nekbone nb(world, ncfg);
    std::vector<double> b(nb.points()), x(nb.points(), 0.0);
    nb.assemble_rhs([](double xx, double, double) {
      return std::sin(2 * M_PI * xx);
    }, std::span<double>(b));
    nb.solve_cg(std::span<double>(x), b, 100, 1e-10);

    Config cfg;
    cfg.physics = Physics::kAdvection;
    cfg.n = 5;
    cfg.ex = cfg.ey = cfg.ez = 2;
    cfg.use_dssum = false;
    cfg.fixed_dt = 1e-3;
    Driver driver(world, cfg);
    // Same mesh and rank layout: copy point-for-point.
    std::copy(x.begin(), x.end(), driver.mutable_field(0).begin());
    double before = driver.integral(0);
    driver.run(3);
    EXPECT_NEAR(driver.integral(0), before, 1e-10 * std::max(1.0, std::abs(before)));
  });
}

}  // namespace
