// LogGP network model: sanity of machine presets, monotonicity, crossover.

#include <gtest/gtest.h>

#include "netmodel/loggp.hpp"

namespace {

using namespace cmtbone::netmodel;

ExchangeShape shape_for(int ranks, int neighbors, long long pairwise_bytes,
                        long long records, long long big_bytes) {
  ExchangeShape s;
  s.ranks = ranks;
  s.neighbors = neighbors;
  s.pairwise_bytes = pairwise_bytes;
  s.crystal_records = records;
  s.big_vector_bytes = big_bytes;
  return s;
}

TEST(LogGP, PresetsAreOrderedByFabricQuality) {
  auto qdr = qdr_infiniband();
  auto eth = ethernet_10g();
  auto exa = notional_exascale();
  EXPECT_LT(qdr.latency, eth.latency);
  EXPECT_GT(qdr.bandwidth, eth.bandwidth);
  EXPECT_LT(exa.latency, qdr.latency);
  EXPECT_GT(exa.bandwidth, qdr.bandwidth);
}

TEST(LogGP, PredictionsArePositiveAndFiniteForRealShapes) {
  auto shape = shape_for(256, 6, 48000, 3000, 800000);
  for (const auto& m : {qdr_infiniband(), ethernet_10g(), notional_exascale()}) {
    auto p = predict_all(m, shape);
    EXPECT_GT(p.pairwise, 0.0);
    EXPECT_GT(p.crystal, 0.0);
    EXPECT_GT(p.allreduce, 0.0);
  }
}

TEST(LogGP, MoreNeighborsCostsMoreForPairwise) {
  auto m = qdr_infiniband();
  double t6 = predict_pairwise(m, shape_for(64, 6, 6000, 0, 0));
  double t26 = predict_pairwise(m, shape_for(64, 26, 26000, 0, 0));
  EXPECT_GT(t26, t6);
}

TEST(LogGP, CrystalCostGrowsLogarithmicallyWithRanks) {
  auto m = qdr_infiniband();
  auto s64 = shape_for(64, 6, 6000, 1000, 0);
  auto s4096 = shape_for(4096, 6, 6000, 1000, 0);
  double t64 = predict_crystal(m, s64);
  double t4096 = predict_crystal(m, s4096);
  // 4096 = 64^2: doubling the stage count should roughly double the time.
  EXPECT_GT(t4096, 1.5 * t64);
  EXPECT_LT(t4096, 3.0 * t64);
}

TEST(LogGP, AllreduceIsTooExpensiveForBigVectors) {
  // The paper's observation: all_reduce loses for realistic setups.
  auto m = qdr_infiniband();
  auto shape = shape_for(256, 6, 48000, 3000, 8 * 1000 * 1000);
  auto p = predict_all(m, shape);
  EXPECT_GT(p.allreduce, p.pairwise);
  EXPECT_GT(p.allreduce, p.crystal);
  EXPECT_STRNE(p.best(), "all_reduce");
}

TEST(LogGP, CrossoverFoundWhenNeighborCountGrowsWithScale) {
  // If pairwise neighbor count grows with P while the crystal payload stays
  // flat, crystal eventually wins.
  auto m = ethernet_10g();
  int crossover = crossover_ranks(m, 1 << 20, [](int p) {
    ExchangeShape s;
    s.ranks = p;
    s.neighbors = std::min(p - 1, p / 2);  // dense coupling
    s.pairwise_bytes = 1LL * s.neighbors * 2048;
    s.crystal_records = 256;
    s.big_vector_bytes = 1 << 22;
    return s;
  });
  EXPECT_GT(crossover, 0);
}

TEST(LogGP, NoCrossoverForPureNearestNeighbor) {
  // Fixed 6 neighbors with small messages: pairwise stays ahead at any P.
  auto m = qdr_infiniband();
  int crossover = crossover_ranks(m, 1 << 16, [](int p) {
    ExchangeShape s;
    s.ranks = p;
    s.neighbors = 6;
    s.pairwise_bytes = 6 * 4800;
    s.crystal_records = 1800;
    s.big_vector_bytes = 1 << 22;
    return s;
  });
  EXPECT_EQ(crossover, 0);
}

TEST(LogGP, DegenerateShapesCostNothing) {
  auto m = qdr_infiniband();
  EXPECT_EQ(predict_pairwise(m, shape_for(1, 0, 0, 0, 0)), 0.0);
  EXPECT_EQ(predict_crystal(m, shape_for(1, 0, 0, 0, 0)), 0.0);
  EXPECT_EQ(predict_allreduce(m, shape_for(1, 0, 0, 0, 0)), 0.0);
}

}  // namespace
