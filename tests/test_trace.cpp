// Trace recording and behavioral-emulation replay.

#include <gtest/gtest.h>

#include <cmath>

#include "comm/runtime.hpp"
#include "core/driver.hpp"
#include "trace/replay.hpp"
#include "trace/trace.hpp"

namespace {

using cmtbone::comm::Comm;
using cmtbone::netmodel::LogGPParams;
using cmtbone::trace::Event;
using cmtbone::trace::EventKind;
using cmtbone::trace::Recorder;
using cmtbone::trace::ReplayConfig;
using cmtbone::trace::Trace;

LogGPParams simple_machine(double latency, double overhead, double bandwidth) {
  LogGPParams m;
  m.name = "test";
  m.latency = latency;
  m.overhead = overhead;
  m.bandwidth = bandwidth;
  return m;
}

Event make_event(EventKind kind, double t0, double t1, int peer, int tag,
                 long long bytes) {
  Event e;
  e.kind = kind;
  e.t_start = t0;
  e.t_end = t1;
  e.peer = peer;
  e.tag = tag;
  e.bytes = bytes;
  return e;
}

// --- hand-built traces with known analytic makespans ---------------------------

TEST(Replay, SingleMessageCostIsLatencyPlusWire) {
  // Rank 0 sends 1000 B at t=0; rank 1 receives. No compute gaps.
  Trace trace;
  trace.ranks.resize(2);
  trace.ranks[0].push_back(make_event(EventKind::kSend, 0, 0, 1, 5, 1000));
  trace.ranks[1].push_back(make_event(EventKind::kRecv, 0, 0, 0, 5, 1000));

  ReplayConfig cfg;
  cfg.machine = simple_machine(1e-6, 1e-7, 1e9);
  auto result = cmtbone::trace::replay(trace, cfg);
  // Sender: o. Message arrives at o + L + m/BW. Receiver: + o.
  double expected = 1e-7 + 1e-6 + 1000.0 / 1e9 + 1e-7;
  EXPECT_NEAR(result.makespan, expected, 1e-12);
  EXPECT_EQ(result.messages, 1u);
  EXPECT_EQ(result.bytes, 1000);
}

TEST(Replay, ComputeGapsScaleWithNodeSpeed) {
  // One rank, pure compute: two events separated by a 2 ms gap.
  Trace trace;
  trace.ranks.resize(2);
  trace.ranks[0].push_back(make_event(EventKind::kSend, 0.000, 0.000, 1, 1, 8));
  trace.ranks[0].push_back(make_event(EventKind::kSend, 0.002, 0.002, 1, 1, 8));
  trace.ranks[1].push_back(make_event(EventKind::kRecv, 0, 0, 0, 1, 8));
  trace.ranks[1].push_back(make_event(EventKind::kRecv, 0, 0, 0, 1, 8));

  ReplayConfig cfg;
  cfg.machine = simple_machine(0, 0, 1e18);  // free network isolates compute
  cfg.compute_scale = 1.0;
  double full = cmtbone::trace::replay(trace, cfg).makespan;
  cfg.compute_scale = 0.25;
  double fast = cmtbone::trace::replay(trace, cfg).makespan;
  EXPECT_NEAR(full, 0.002, 1e-9);
  EXPECT_NEAR(fast, 0.0005, 1e-9);
}

TEST(Replay, ReceiverBlocksUntilMessageArrives) {
  // Rank 1 wants the message immediately, but rank 0 computes 1 ms first.
  Trace trace;
  trace.ranks.resize(2);
  trace.ranks[0].push_back(
      make_event(EventKind::kSend, 0.001, 0.001, 1, 2, 100));
  trace.ranks[1].push_back(make_event(EventKind::kRecv, 0, 0, 0, 2, 100));

  ReplayConfig cfg;
  cfg.machine = simple_machine(1e-6, 0, 1e12);
  auto result = cmtbone::trace::replay(trace, cfg);
  EXPECT_GT(result.total_blocked, 0.0009);
  EXPECT_NEAR(result.makespan, 0.001 + 1e-6 + 100.0 / 1e12, 1e-9);
}

TEST(Replay, FifoMatchingPreservesMessageOrder) {
  // Two same-tag messages: first sent must match first received.
  Trace trace;
  trace.ranks.resize(2);
  trace.ranks[0].push_back(make_event(EventKind::kSend, 0, 0, 1, 3, 10));
  trace.ranks[0].push_back(make_event(EventKind::kSend, 0, 0, 1, 3, 1000000));
  trace.ranks[1].push_back(make_event(EventKind::kRecv, 0, 0, 0, 3, 10));
  trace.ranks[1].push_back(make_event(EventKind::kRecv, 0, 0, 0, 3, 1000000));

  ReplayConfig cfg;
  cfg.machine = simple_machine(1e-6, 1e-7, 1e9);
  EXPECT_NO_THROW(cmtbone::trace::replay(trace, cfg));
}

TEST(Replay, CollectiveSynchronizesAllRanks) {
  // Rank 1 computes 5 ms before the barrier; everyone leaves together.
  Trace trace;
  trace.ranks.resize(3);
  for (int r = 0; r < 3; ++r) {
    Event e;
    e.kind = EventKind::kCollective;
    e.collective = "MPI_Barrier";
    e.t_start = r == 1 ? 0.005 : 0.0;
    e.t_end = e.t_start;
    trace.ranks[r].push_back(e);
  }
  ReplayConfig cfg;
  cfg.machine = simple_machine(1e-6, 1e-7, 1e9);
  auto result = cmtbone::trace::replay(trace, cfg);
  for (double f : result.rank_finish) {
    EXPECT_NEAR(f, result.makespan, 1e-12);
  }
  EXPECT_GT(result.makespan, 0.005);
  EXPECT_GT(result.total_blocked, 0.009);  // two ranks idled ~5 ms each
}

TEST(Replay, SlowerNodesStretchComputeOnly) {
  // compute_scale > 1 models slower nodes; comm cost stays fixed.
  Trace trace;
  trace.ranks.resize(2);
  trace.ranks[0].push_back(make_event(EventKind::kSend, 0.001, 0.001, 1, 1, 8));
  trace.ranks[1].push_back(make_event(EventKind::kRecv, 0, 0, 0, 1, 8));
  ReplayConfig cfg;
  cfg.machine = simple_machine(1e-6, 1e-7, 1e9);
  cfg.compute_scale = 1.0;
  auto base = cmtbone::trace::replay(trace, cfg);
  cfg.compute_scale = 3.0;
  auto slow = cmtbone::trace::replay(trace, cfg);
  EXPECT_NEAR(slow.total_compute, 3.0 * base.total_compute, 1e-12);
  EXPECT_DOUBLE_EQ(slow.total_comm, base.total_comm);
  EXPECT_GT(slow.makespan, base.makespan);
}

TEST(Replay, CollectiveCostDependsOnType) {
  // An allreduce (2 log P sweeps) must cost more than a barrier (1 sweep,
  // no payload) on the same machine at the same scale.
  auto run_one = [](const char* name, long long bytes) {
    Trace trace;
    trace.ranks.resize(4);
    for (int r = 0; r < 4; ++r) {
      Event e;
      e.kind = EventKind::kCollective;
      e.collective = name;
      e.bytes = bytes;
      trace.ranks[r].push_back(e);
    }
    ReplayConfig cfg;
    cfg.machine = simple_machine(1e-5, 1e-6, 1e8);
    return cmtbone::trace::replay(trace, cfg).makespan;
  };
  double barrier = run_one("MPI_Barrier", 0);
  double bcast = run_one("MPI_Bcast", 1 << 16);
  double allreduce = run_one("MPI_Allreduce", 1 << 16);
  EXPECT_GT(bcast, barrier);
  EXPECT_GT(allreduce, bcast);
}

TEST(Replay, MakespanIsMaxOfRankFinishTimes) {
  Trace trace;
  trace.ranks.resize(3);
  trace.ranks[0].push_back(make_event(EventKind::kSend, 0.002, 0.002, 1, 1, 8));
  trace.ranks[1].push_back(make_event(EventKind::kRecv, 0, 0, 0, 1, 8));
  // Rank 2 does nothing.
  ReplayConfig cfg;
  cfg.machine = simple_machine(1e-6, 1e-7, 1e9);
  auto result = cmtbone::trace::replay(trace, cfg);
  double max_finish = 0;
  for (double f : result.rank_finish) max_finish = std::max(max_finish, f);
  EXPECT_DOUBLE_EQ(result.makespan, max_finish);
  EXPECT_DOUBLE_EQ(result.rank_finish[2], 0.0);
}

// --- collective cost formulas, pinned ------------------------------------------

TEST(Replay, CollectiveCostFormulasArePinned) {
  using cmtbone::trace::collective_cost;
  LogGPParams m = simple_machine(1e-5, 1e-6, 1e8);
  const int p = 8;
  const int stages = 3;  // ceil(log2 8)
  const long long bytes = 4000;
  const double msg = m.latency + 2.0 * m.overhead + bytes / m.bandwidth;

  // Allreduce and the allgathers: reduce sweep + broadcast sweep.
  EXPECT_DOUBLE_EQ(collective_cost("MPI_Allreduce", bytes, p, m),
                   2.0 * stages * msg);
  EXPECT_DOUBLE_EQ(collective_cost("MPI_Allgather", bytes, p, m),
                   2.0 * stages * msg);
  // Barrier: one payload-free sweep.
  EXPECT_DOUBLE_EQ(collective_cost("MPI_Barrier", 0, p, m),
                   stages * (m.latency + 2.0 * m.overhead));
  // Alltoall: per-partner overheads serialize, wire time overlaps.
  EXPECT_DOUBLE_EQ(
      collective_cost("MPI_Alltoallv", bytes, p, m),
      2.0 * (p - 1) * m.overhead + m.latency + bytes / m.bandwidth);
  // Scan: a linear chain crosses P-1 hops — not P (the off-by-one this
  // formula once had would have charged a phantom hop at every scale).
  EXPECT_DOUBLE_EQ(collective_cost("MPI_Scan", bytes, p, m),
                   (p - 1) * msg);
  // Tree collectives and anything unrecognized: one binomial sweep.
  EXPECT_DOUBLE_EQ(collective_cost("MPI_Bcast", bytes, p, m), stages * msg);
  EXPECT_DOUBLE_EQ(collective_cost("MPI_Frobnicate", bytes, p, m),
                   stages * msg);
  // Degenerate communicator: nothing to exchange.
  EXPECT_DOUBLE_EQ(collective_cost("MPI_Allreduce", bytes, 1, m), 0.0);
}

TEST(Replay, EmptyTraceReplaysToAllZeroResult) {
  Trace trace;
  trace.ranks.resize(3);
  ReplayConfig cfg;
  cfg.machine = simple_machine(1e-6, 1e-7, 1e9);
  auto result = cmtbone::trace::replay(trace, cfg);
  EXPECT_DOUBLE_EQ(result.makespan, 0.0);
  EXPECT_EQ(result.messages, 0u);
  EXPECT_EQ(result.bytes, 0);
  ASSERT_EQ(result.rank_finish.size(), 3u);
  for (double f : result.rank_finish) EXPECT_DOUBLE_EQ(f, 0.0);
}

// --- causal-inconsistency detection --------------------------------------------

TEST(Replay, RankFinishingBeforeCollectiveThrows) {
  // Rank 0 reaches a barrier rank 1 never joins: deadlock on a real fabric.
  Trace trace;
  trace.ranks.resize(2);
  Event e;
  e.kind = EventKind::kCollective;
  e.collective = "MPI_Barrier";
  trace.ranks[0].push_back(e);
  trace.ranks[1].push_back(make_event(EventKind::kSend, 0, 0, 0, 1, 8));
  ReplayConfig cfg;
  cfg.machine = simple_machine(1e-6, 1e-7, 1e9);
  EXPECT_THROW(cmtbone::trace::replay(trace, cfg), std::runtime_error);
}

TEST(Replay, MismatchedCollectiveNamesThrow) {
  Trace trace;
  trace.ranks.resize(2);
  Event a, b;
  a.kind = b.kind = EventKind::kCollective;
  a.collective = "MPI_Barrier";
  b.collective = "MPI_Allreduce";
  trace.ranks[0].push_back(a);
  trace.ranks[1].push_back(b);
  ReplayConfig cfg;
  cfg.machine = simple_machine(1e-6, 1e-7, 1e9);
  EXPECT_THROW(cmtbone::trace::replay(trace, cfg), std::runtime_error);
}

TEST(Replay, UnmatchedReceiveThrows) {
  Trace trace;
  trace.ranks.resize(2);
  trace.ranks[1].push_back(make_event(EventKind::kRecv, 0, 0, 0, 9, 8));
  ReplayConfig cfg;
  cfg.machine = simple_machine(1e-6, 1e-7, 1e9);
  EXPECT_THROW(cmtbone::trace::replay(trace, cfg), std::runtime_error);
}

TEST(Replay, FasterNetworkNeverSlowsTheRun) {
  // Ping-pong chain: makespan must be monotone in fabric quality.
  Trace trace;
  trace.ranks.resize(2);
  for (int i = 0; i < 10; ++i) {
    trace.ranks[0].push_back(make_event(EventKind::kSend, 0, 0, 1, 1, 4096));
    trace.ranks[0].push_back(make_event(EventKind::kRecv, 0, 0, 1, 2, 4096));
    trace.ranks[1].push_back(make_event(EventKind::kRecv, 0, 0, 0, 1, 4096));
    trace.ranks[1].push_back(make_event(EventKind::kSend, 0, 0, 0, 2, 4096));
  }
  ReplayConfig slow, fast;
  slow.machine = cmtbone::netmodel::ethernet_10g();
  fast.machine = cmtbone::netmodel::notional_exascale();
  double t_slow = cmtbone::trace::replay(trace, slow).makespan;
  double t_fast = cmtbone::trace::replay(trace, fast).makespan;
  EXPECT_LT(t_fast, t_slow);
}

// --- recording from live runs ---------------------------------------------------

TEST(Recording, CapturesP2PAndCollectives) {
  Recorder recorder(2);
  cmtbone::comm::RunOptions opts;
  opts.tracer = &recorder;
  cmtbone::comm::run(2, [](Comm& world) {
    if (world.rank() == 0) {
      double x = 1.5;
      world.send(std::span<const double>(&x, 1), 1, 4);
    } else {
      double x = 0;
      world.recv(std::span<double>(&x, 1), 0, 4);
    }
    double v = 1.0;
    world.allreduce(std::span<double>(&v, 1), cmtbone::comm::ReduceOp::kSum);
  }, opts);

  Trace trace = recorder.take();
  ASSERT_EQ(trace.nranks(), 2);
  // Rank 0: one send + one collective; rank 1: one recv + one collective.
  bool send_seen = false, recv_seen = false;
  int collectives = 0;
  for (int r = 0; r < 2; ++r) {
    for (const Event& e : trace.ranks[r]) {
      if (e.kind == EventKind::kSend) {
        send_seen = true;
        EXPECT_EQ(e.peer, 1);
        EXPECT_EQ(e.bytes, 8);
        EXPECT_EQ(e.tag, 4);
      }
      if (e.kind == EventKind::kRecv) {
        recv_seen = true;
        EXPECT_EQ(e.peer, 0);
        EXPECT_EQ(e.bytes, 8);
      }
      if (e.kind == EventKind::kCollective) {
        ++collectives;
        EXPECT_EQ(e.collective, "MPI_Allreduce");
      }
    }
  }
  EXPECT_TRUE(send_seen);
  EXPECT_TRUE(recv_seen);
  EXPECT_EQ(collectives, 2);
  EXPECT_GT(trace.recorded_makespan(), 0.0);
}

TEST(Recording, LiveCmtBoneTraceReplays) {
  // Record a real (small) mini-app run and replay it on two machines: the
  // trace must be causally consistent and respond to fabric quality.
  const int ranks = 4;
  Recorder recorder(ranks);
  cmtbone::comm::RunOptions opts;
  opts.tracer = &recorder;
  cmtbone::comm::run(ranks, [](Comm& world) {
    cmtbone::core::Config cfg;
    cfg.n = 4;
    cfg.ex = cfg.ey = cfg.ez = 2;
    cfg.fixed_dt = 1e-3;
    cmtbone::core::Driver driver(world, cfg);
    driver.initialize(driver.default_ic());
    driver.run(2);
  }, opts);

  Trace trace = recorder.take();
  EXPECT_GT(trace.total_events(), 0u);

  ReplayConfig eth, exa;
  eth.machine = cmtbone::netmodel::ethernet_10g();
  exa.machine = cmtbone::netmodel::notional_exascale();
  auto slow = cmtbone::trace::replay(trace, eth);
  auto fast = cmtbone::trace::replay(trace, exa);
  EXPECT_GT(slow.makespan, 0.0);
  EXPECT_LT(fast.makespan, slow.makespan);
  EXPECT_GT(slow.messages, 0u);
  EXPECT_EQ(slow.messages, fast.messages);  // same behavior, new timing
  EXPECT_EQ(slow.bytes, fast.bytes);
}

TEST(Recording, ReplayOfALiveTraceIsDeterministic) {
  // Two replays of one recorded trace must agree bit-for-bit: replay is a
  // pure function of (trace, config), with no hidden scheduler state.
  const int ranks = 2;
  Recorder recorder(ranks);
  cmtbone::comm::RunOptions opts;
  opts.tracer = &recorder;
  cmtbone::comm::run(ranks, [](Comm& world) {
    cmtbone::core::Config cfg;
    cfg.n = 4;
    cfg.ex = cfg.ey = cfg.ez = 2;
    cfg.fixed_dt = 1e-3;
    cmtbone::core::Driver driver(world, cfg);
    driver.initialize(driver.default_ic());
    driver.run(2);
  }, opts);
  Trace trace = recorder.take();

  ReplayConfig cfg;
  cfg.machine = cmtbone::netmodel::qdr_infiniband();
  auto first = cmtbone::trace::replay(trace, cfg);
  auto second = cmtbone::trace::replay(trace, cfg);
  EXPECT_EQ(first.makespan, second.makespan);
  EXPECT_EQ(first.total_compute, second.total_compute);
  EXPECT_EQ(first.total_comm, second.total_comm);
  EXPECT_EQ(first.total_blocked, second.total_blocked);
  EXPECT_EQ(first.messages, second.messages);
  EXPECT_EQ(first.bytes, second.bytes);
  ASSERT_EQ(first.rank_finish.size(), second.rank_finish.size());
  for (std::size_t r = 0; r < first.rank_finish.size(); ++r) {
    EXPECT_EQ(first.rank_finish[r], second.rank_finish[r]);
  }
}

TEST(Recording, TakeResetsTheRecorder) {
  Recorder recorder(1);
  recorder.on_send(0, 0, 1, 8, 0.0, 0.1);
  Trace first = recorder.take();
  EXPECT_EQ(first.total_events(), 1u);
  Trace second = recorder.take();
  EXPECT_EQ(second.total_events(), 0u);
  EXPECT_EQ(second.nranks(), 1);
}

}  // namespace
