// Service layer: admission control, fair-share dispatch, per-job fault
// domains (containment + attribution), checkpoint-backed preemption with
// bit-identical resume, deadlines, and scheduler lifecycle (drain,
// cancel, handles outliving the scheduler).

#include <gtest/gtest.h>

#include <chrono>
#include <cstddef>
#include <functional>
#include <filesystem>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#if defined(__unix__) || defined(__APPLE__)
#include <unistd.h>
#endif

#include "chaos/chaos.hpp"
#include "core/driver.hpp"
#include "service/scheduler.hpp"

namespace {

namespace fs = std::filesystem;

using cmtbone::chaos::ChaosEngine;
using cmtbone::chaos::ChaosPolicy;
using cmtbone::comm::Comm;
using cmtbone::core::Config;
using cmtbone::core::Driver;
using cmtbone::service::JobHandle;
using cmtbone::service::JobReport;
using cmtbone::service::JobSpec;
using cmtbone::service::JobState;
using cmtbone::service::Scheduler;
using cmtbone::service::ServiceOptions;

Config tiny_config() {
  Config cfg;
  cfg.n = 3;
  cfg.ex = cfg.ey = cfg.ez = 2;
  cfg.fixed_dt = 1e-3;
  return cfg;
}

class ServiceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("cmtbone_svc_" + std::to_string(::getpid()) + "_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    fs::create_directories(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  ServiceOptions opts(int workers) const {
    ServiceOptions o;
    o.total_workers = workers;
    o.checkpoint_root = (dir_ / "jobs").string();
    return o;
  }

  JobSpec spec(const std::string& tenant, int nsteps) const {
    JobSpec s;
    s.tenant = tenant;
    s.config = tiny_config();
    s.nsteps = nsteps;
    s.ranks = 1;
    s.checkpoint_interval = 4;
    s.retry.backoff_initial_ms = 0.1;
    return s;
  }

  fs::path dir_;
};

TEST_F(ServiceTest, JobsAcrossTenantsAllComplete) {
  Scheduler sched(opts(2));
  std::vector<JobHandle> handles;
  for (int i = 0; i < 3; ++i) {
    handles.push_back(sched.submit(spec("acme", 6)));
    handles.push_back(sched.submit(spec("globex", 6)));
  }
  for (const JobHandle& h : handles) {
    const JobReport r = h.wait();
    EXPECT_EQ(r.state, JobState::kCompleted) << "job " << r.id << " " << r.error;
    EXPECT_EQ(r.steps_done, 6) << "job " << r.id;
    EXPECT_GE(r.dispatches, 1);
    EXPECT_GE(r.attempts, 1);
    EXPECT_EQ(r.failures, 0);
  }
  const auto st = sched.stats();
  EXPECT_EQ(st.submitted, 6);
  EXPECT_EQ(st.completed, 6);
  EXPECT_EQ(st.failed, 0);
  EXPECT_EQ(st.rejected, 0);
  EXPECT_EQ(st.running_jobs, 0);
  EXPECT_EQ(st.busy_workers, 0);
  EXPECT_EQ(st.queue_depth, 0);
  EXPECT_EQ(st.tenant_completed.at("acme"), 3);
  EXPECT_EQ(st.tenant_completed.at("globex"), 3);
  EXPECT_GT(st.tenant_worker_seconds.at("acme"), 0.0);
}

TEST_F(ServiceTest, AdmissionRejectsImpossibleSpecs) {
  ServiceOptions o = opts(2);
  o.tenant_max_workers = 1;
  Scheduler sched(o);

  JobSpec too_wide = spec("acme", 4);
  too_wide.ranks = 3;  // wider than the pool: can never run
  const JobReport r1 = sched.submit(std::move(too_wide)).wait();
  EXPECT_EQ(r1.state, JobState::kRejected);
  EXPECT_NE(r1.error.find("worker pool"), std::string::npos) << r1.error;

  JobSpec over_quota = spec("acme", 4);
  over_quota.ranks = 2;  // within the pool but above the tenant quota
  const JobReport r2 = sched.submit(std::move(over_quota)).wait();
  EXPECT_EQ(r2.state, JobState::kRejected);
  EXPECT_NE(r2.error.find("quota"), std::string::npos) << r2.error;

  JobSpec no_steps = spec("acme", 0);
  const JobReport r3 = sched.submit(std::move(no_steps)).wait();
  EXPECT_EQ(r3.state, JobState::kRejected);

  EXPECT_EQ(sched.stats().rejected, 3);
  EXPECT_EQ(sched.stats().submitted, 0);
}

TEST_F(ServiceTest, AdmissionRejectsQueueOverflow) {
  ServiceOptions o = opts(1);
  o.max_queued = 1;
  Scheduler sched(o);
  // j1 occupies the single worker, j2 fills the queue, j3 overflows.
  JobHandle j1 = sched.submit(spec("acme", 400));
  while (j1.state() == JobState::kQueued) {
    std::this_thread::sleep_for(std::chrono::microseconds(200));
  }
  JobHandle j2 = sched.submit(spec("acme", 4));
  JobHandle j3 = sched.submit(spec("acme", 4));
  const JobReport r3 = j3.report();
  EXPECT_EQ(r3.state, JobState::kRejected);
  EXPECT_NE(r3.error.find("queue full"), std::string::npos) << r3.error;
  EXPECT_EQ(j1.wait().state, JobState::kCompleted);
  EXPECT_EQ(j2.wait().state, JobState::kCompleted);
}

TEST_F(ServiceTest, FaultedJobIsContainedAndAttributed) {
  // One tenant's job crash-loops until its retry budget drains; the
  // neighbor tenant's job must complete untouched and the failure must be
  // attributed in the failed job's own report — never a service-wide abort.
  ChaosPolicy policy;
  policy.kill_rank = 0;
  policy.kill_step = 1;
  policy.kill_period = 1;
  policy.kill_max_count = 100;
  ChaosEngine engine(policy, 1);

  Scheduler sched(opts(2));
  JobSpec bad = spec("chaosco", 40);
  bad.chaos = &engine;
  bad.retry.max_retries = 1;
  JobHandle bad_h = sched.submit(std::move(bad));
  JobHandle good_h = sched.submit(spec("acme", 12));

  const JobReport good = good_h.wait();
  EXPECT_EQ(good.state, JobState::kCompleted) << good.error;
  EXPECT_EQ(good.steps_done, 12);

  const JobReport bad_r = bad_h.wait();
  EXPECT_EQ(bad_r.state, JobState::kFailed);
  EXPECT_NE(bad_r.error.find("chaos"), std::string::npos) << bad_r.error;
  EXPECT_EQ(bad_r.attempts, 2);  // initial + the one retry, all killed
  EXPECT_EQ(bad_r.failures, 2);

  const auto st = sched.stats();
  EXPECT_EQ(st.completed, 1);
  EXPECT_EQ(st.failed, 1);
  EXPECT_EQ(st.job_failures, 2);
}

TEST_F(ServiceTest, RetryBudgetAbsorbsATransientFault) {
  // A one-shot kill (the node died once and was replaced): the job's own
  // supervisor retries, restores from the ring, and completes — the
  // failure is absorbed inside the job's fault domain and visible only in
  // its report.
  ChaosPolicy policy;
  policy.kill_rank = 0;
  policy.kill_step = 6;  // after the step-4 checkpoint
  ChaosEngine engine(policy, 1);

  Scheduler sched(opts(1));
  JobSpec s = spec("acme", 10);
  s.chaos = &engine;
  s.retry.max_retries = 3;
  const JobReport r = sched.submit(std::move(s)).wait();
  EXPECT_EQ(r.state, JobState::kCompleted) << r.error;
  EXPECT_EQ(r.steps_done, 10);
  EXPECT_GE(r.attempts, 2);
  EXPECT_GE(r.failures, 1);
  EXPECT_EQ(r.last_restored_epoch, 4);
  EXPECT_GE(r.stats.restores, 1);
  EXPECT_EQ(sched.stats().failed, 0);
  EXPECT_GE(sched.stats().job_restores, 1);
}

// Capture every rank's full field state after the last step.
using FieldDump = std::map<int, std::vector<std::vector<double>>>;

std::function<void(Driver&, Comm&)> capture_into(FieldDump* dump,
                                                 std::mutex* mu) {
  return [dump, mu](Driver& d, Comm& world) {
    std::vector<std::vector<double>> mine(std::size_t(d.nfields()));
    for (int f = 0; f < d.nfields(); ++f) {
      auto span = d.field(f);
      mine[std::size_t(f)].assign(span.begin(), span.end());
    }
    std::lock_guard<std::mutex> lock(*mu);
    (*dump)[world.rank()] = std::move(mine);
  };
}

TEST_F(ServiceTest, PreemptedJobResumesBitIdentically) {
  std::mutex mu;
  FieldDump baseline;
  const int nsteps = 250;
  {
    Scheduler sched(opts(2));
    JobSpec s = spec("solo", nsteps);
    s.ranks = 2;
    s.checkpoint_interval = 10;
    s.on_final = capture_into(&baseline, &mu);
    ASSERT_EQ(sched.submit(std::move(s)).wait().state, JobState::kCompleted);
  }

  // Preemption is timing-dependent (the low job could finish before the
  // eviction lands), so try a few times; one trigger is enough.
  bool triggered = false;
  for (int attempt = 0; attempt < 3 && !triggered; ++attempt) {
    FieldDump resumed;
    Scheduler sched(opts(2));
    JobSpec low = spec("batch", nsteps);
    low.ranks = 2;
    low.checkpoint_interval = 10;
    low.on_final = capture_into(&resumed, &mu);
    JobHandle low_h = sched.submit(std::move(low));
    while (low_h.state() == JobState::kQueued) {
      std::this_thread::sleep_for(std::chrono::microseconds(200));
    }
    JobSpec high = spec("urgent", 5);
    high.ranks = 2;
    high.priority = 9;
    JobHandle high_h = sched.submit(std::move(high));

    const JobReport high_r = high_h.wait();
    const JobReport low_r = low_h.wait();
    ASSERT_EQ(high_r.state, JobState::kCompleted) << high_r.error;
    ASSERT_EQ(low_r.state, JobState::kCompleted) << low_r.error;
    if (low_r.preemptions < 1) continue;  // finished before the eviction
    triggered = true;
    EXPECT_GE(low_r.dispatches, 2);
    EXPECT_GE(low_r.last_restored_epoch, 0);
    // The suspend/restore round trip must be invisible in the physics:
    // exact binary equality with the undisturbed run.
    ASSERT_EQ(baseline.size(), resumed.size());
    for (const auto& [rank, fields] : baseline) {
      ASSERT_TRUE(resumed.count(rank));
      EXPECT_EQ(fields, resumed.at(rank)) << "rank " << rank;
    }
    const auto st = sched.stats();
    EXPECT_GE(st.preemptions, 1);
    EXPECT_GE(st.resumes, 1);
  }
  EXPECT_TRUE(triggered) << "preemption never triggered in 3 attempts";
}

TEST_F(ServiceTest, DeadlineIsTerminalAndAttributed) {
  Scheduler sched(opts(1));
  JobSpec s = spec("acme", 1000000);
  s.deadline_seconds = 0.05;
  const JobReport r = sched.submit(std::move(s)).wait();
  EXPECT_EQ(r.state, JobState::kFailed);
  EXPECT_NE(r.error.find("deadline"), std::string::npos) << r.error;
  // Terminal by design: the supervisor must not have burned the retry
  // budget re-running a job that cannot finish any sooner.
  EXPECT_EQ(r.attempts, 1);
}

TEST_F(ServiceTest, HandlesOutliveTheScheduler) {
  JobHandle h;
  {
    Scheduler sched(opts(1));
    h = sched.submit(spec("acme", 5));
  }  // destructor drains
  const JobReport r = h.wait();  // safe: the handle owns the shared state
  EXPECT_EQ(r.state, JobState::kCompleted) << r.error;
  EXPECT_EQ(h.state(), JobState::kCompleted);
}

TEST_F(ServiceTest, NonDrainingShutdownCancelsTheQueue) {
  Scheduler sched(opts(1));
  JobHandle running = sched.submit(spec("acme", 2000));
  while (running.state() == JobState::kQueued) {
    std::this_thread::sleep_for(std::chrono::microseconds(200));
  }
  JobHandle queued = sched.submit(spec("acme", 4));
  sched.shutdown(/*drain=*/false);

  const JobReport q = queued.wait();
  EXPECT_EQ(q.state, JobState::kCancelled);
  const JobReport r = running.wait();
  // The running job yields at its next step boundary and is cancelled;
  // completion is possible only if it beat the shutdown to the last step.
  EXPECT_TRUE(r.state == JobState::kCancelled ||
              r.state == JobState::kCompleted)
      << cmtbone::service::job_state_name(r.state);

  const JobReport late = sched.submit(spec("acme", 4)).report();
  EXPECT_EQ(late.state, JobState::kRejected);
  EXPECT_NE(late.error.find("shutting down"), std::string::npos) << late.error;
}

TEST_F(ServiceTest, RejectedAndTerminalStatesAreNamed) {
  using cmtbone::service::job_state_name;
  using cmtbone::service::job_state_terminal;
  EXPECT_STREQ(job_state_name(JobState::kQueued), "queued");
  EXPECT_STREQ(job_state_name(JobState::kPreempted), "preempted");
  EXPECT_FALSE(job_state_terminal(JobState::kRunning));
  EXPECT_TRUE(job_state_terminal(JobState::kFailed));
  EXPECT_TRUE(job_state_terminal(JobState::kCancelled));
}

}  // namespace
