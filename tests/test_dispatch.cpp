// The kernel-backend dispatch layer: selection precedence (forced > tuned >
// default), environment knobs, the autotune table and its cache (round-trip,
// corrupt/stale/foreign-ISA rejection, graceful re-tune), and the contract
// the solver rests on — every forced backend drives the full driver matrix
// (threads x overlap, plus chaos-perturbed communication) to bit-identical
// results, run to run.

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "chaos_workloads.hpp"
#include "comm/runtime.hpp"
#include "core/driver.hpp"
#include "kernels/dispatch.hpp"
#include "kernels/mxm.hpp"
#include "util/rng.hpp"

namespace {

using cmtbone::comm::Comm;
using cmtbone::core::Config;
using cmtbone::core::Driver;
using cmtbone::core::FaceBackend;
using cmtbone::core::Physics;
using cmtbone::kernels::all_backends;
using cmtbone::kernels::Backend;
using cmtbone::kernels::backend_from_name;
using cmtbone::kernels::backend_name;
using cmtbone::kernels::clear_tune_table;
using cmtbone::kernels::ensure_tuned;
using cmtbone::kernels::forced_backend;
using cmtbone::kernels::isa_name;
using cmtbone::kernels::kMaxDispatchN;
using cmtbone::kernels::kMinDispatchN;
using cmtbone::kernels::kNumBackends;
using cmtbone::kernels::load_tune_cache;
using cmtbone::kernels::parse_tune_table;
using cmtbone::kernels::save_tune_cache;
using cmtbone::kernels::ScopedBackendForce;
using cmtbone::kernels::selected_backend;
using cmtbone::kernels::serialize_tune_table;
using cmtbone::kernels::set_forced_backend;
using cmtbone::kernels::TuneEntry;
using cmtbone::kernels::TuneTable;

// Every test leaves the process-global selection exactly as it found it:
// no force, no tune table, no leftover environment knobs.
class DispatchTest : public ::testing::Test {
 protected:
  void SetUp() override { reset(); }
  void TearDown() override { reset(); }
  static void reset() {
    unsetenv(cmtbone::kernels::kBackendEnvVar);
    unsetenv(cmtbone::kernels::kAutotuneEnvVar);
    unsetenv(cmtbone::kernels::kTuneCacheEnvVar);
    cmtbone::kernels::reload_env_selection();
    set_forced_backend(std::nullopt);
    clear_tune_table();
  }
};

TuneTable small_table() {
  TuneTable t;
  t.isa = isa_name();
  TuneEntry e;
  e.n = 5;
  e.best = Backend::kFixedN;
  for (int i = 0; i < kNumBackends; ++i) e.seconds[i] = 0.5 + 0.25 * i;
  t.entries.push_back(e);
  e.n = 12;
  e.best = Backend::kScalar;
  for (int i = 0; i < kNumBackends; ++i) e.seconds[i] = 1e-6 * (i + 1);
  t.entries.push_back(e);
  return t;
}

// --- selection precedence ----------------------------------------------------

TEST_F(DispatchTest, NameRoundTripAndRejects) {
  ASSERT_EQ(int(all_backends().size()), kNumBackends);
  for (Backend b : all_backends()) {
    auto parsed = backend_from_name(backend_name(b));
    ASSERT_TRUE(parsed.has_value()) << backend_name(b);
    EXPECT_EQ(*parsed, b);
  }
  EXPECT_FALSE(backend_from_name(""));
  EXPECT_FALSE(backend_from_name("Scalar"));
  EXPECT_FALSE(backend_from_name("avx2"));  // an ISA, not a backend
  EXPECT_FALSE(backend_from_name("simd "));
}

TEST_F(DispatchTest, ForcedBeatsTunedBeatsDefault) {
  EXPECT_EQ(selected_backend(7), Backend::kBatched);  // default
  TuneTable t;
  t.isa = isa_name();
  TuneEntry e;
  e.n = 7;
  e.best = Backend::kFixedN;
  t.entries.push_back(e);
  cmtbone::kernels::apply_tune_table(t);
  EXPECT_EQ(selected_backend(7), Backend::kFixedN);   // tuned n
  EXPECT_EQ(selected_backend(8), Backend::kBatched);  // untuned n: default
  {
    ScopedBackendForce force(Backend::kScalar);
    EXPECT_EQ(selected_backend(7), Backend::kScalar);  // force wins
    EXPECT_EQ(forced_backend(), Backend::kScalar);
  }
  EXPECT_EQ(selected_backend(7), Backend::kFixedN);  // force restored away
  clear_tune_table();
  EXPECT_EQ(selected_backend(7), Backend::kBatched);
}

TEST_F(DispatchTest, DispatchMxmHonorsForceAndDegradesOutOfRange) {
  {
    ScopedBackendForce force(Backend::kScalar);
    EXPECT_EQ(cmtbone::kernels::dispatch_mxm(8), nullptr);  // caller uses mxm
  }
  {
    ScopedBackendForce force(Backend::kFixedN);
    EXPECT_EQ(cmtbone::kernels::dispatch_mxm(8),
              cmtbone::kernels::mxm_fixed_kernel(8));
  }
  // Outside the dispatch range every backend degrades to the runtime
  // kernel, reported as nullptr — never an abort, never a wrong kernel.
  for (Backend b : all_backends()) {
    ScopedBackendForce force(b);
    EXPECT_EQ(cmtbone::kernels::dispatch_mxm(kMinDispatchN - 1), nullptr)
        << backend_name(b);
    EXPECT_EQ(cmtbone::kernels::dispatch_mxm(kMaxDispatchN + 1), nullptr)
        << backend_name(b);
  }
  // In range, a SIMD selection hands out a real kernel that matches the
  // runtime mxm bit for bit.
  ScopedBackendForce force(Backend::kSimd);
  cmtbone::kernels::MxmFixedFn f = cmtbone::kernels::dispatch_mxm(6);
  ASSERT_NE(f, nullptr);
  cmtbone::util::SplitMix64 rng(21);
  std::vector<double> a(5 * 6), b(6 * 4), want(5 * 4), got(5 * 4);
  for (double& x : a) x = rng.uniform(-1, 1);
  for (double& x : b) x = rng.uniform(-1, 1);
  cmtbone::kernels::mxm(a.data(), 5, b.data(), 6, want.data(), 4);
  f(a.data(), 5, b.data(), got.data(), 4);
  for (std::size_t p = 0; p < want.size(); ++p) ASSERT_EQ(want[p], got[p]);
}

// --- environment knobs -------------------------------------------------------

TEST_F(DispatchTest, EnvBackendForcesSelectionAndUnknownValueIsIgnored) {
  setenv(cmtbone::kernels::kBackendEnvVar, "fixed-n", 1);
  cmtbone::kernels::reload_env_selection();
  EXPECT_EQ(forced_backend(), Backend::kFixedN);
  EXPECT_EQ(selected_backend(9), Backend::kFixedN);

  setenv(cmtbone::kernels::kBackendEnvVar, "warp-drive", 1);
  cmtbone::kernels::reload_env_selection();
  EXPECT_EQ(forced_backend(), std::nullopt);  // warned and ignored
  EXPECT_EQ(selected_backend(9), Backend::kBatched);
}

TEST_F(DispatchTest, AutotuneEnvLoadsValidCacheAtReload) {
  const std::string path = "dispatch_env_cache.tmp";
  TuneTable t;
  t.isa = isa_name();
  TuneEntry e;
  e.n = 6;
  e.best = Backend::kScalar;  // deliberately not the default
  t.entries.push_back(e);
  ASSERT_TRUE(save_tune_cache(t, path));

  setenv(cmtbone::kernels::kAutotuneEnvVar, "1", 1);
  setenv(cmtbone::kernels::kTuneCacheEnvVar, path.c_str(), 1);
  cmtbone::kernels::reload_env_selection();
  EXPECT_EQ(selected_backend(6), Backend::kScalar);   // from the cache
  EXPECT_EQ(selected_backend(10), Backend::kBatched);  // uncached n
  std::remove(path.c_str());
}

TEST_F(DispatchTest, EnvForcedBackendWinsOverCacheAndAutotune) {
  const std::string path = "dispatch_force_cache.tmp";
  TuneTable t;
  t.isa = isa_name();
  TuneEntry e;
  e.n = 5;
  e.best = Backend::kFixedN;
  t.entries.push_back(e);
  ASSERT_TRUE(save_tune_cache(t, path));

  setenv(cmtbone::kernels::kBackendEnvVar, "simd", 1);
  setenv(cmtbone::kernels::kAutotuneEnvVar, "1", 1);
  setenv(cmtbone::kernels::kTuneCacheEnvVar, path.c_str(), 1);
  cmtbone::kernels::reload_env_selection();
  EXPECT_EQ(selected_backend(5), Backend::kSimd);  // force, not the cache
  // ensure_tuned also stands down under a force: empty table, no apply.
  TuneTable out = ensure_tuned({5}, path);
  EXPECT_TRUE(out.entries.empty());
  EXPECT_EQ(selected_backend(5), Backend::kSimd);
  std::remove(path.c_str());
}

// --- tune-table round-trip and rejection -------------------------------------

TEST_F(DispatchTest, TuneTableTextRoundTrip) {
  const TuneTable t = small_table();
  auto back = parse_tune_table(serialize_tune_table(t));
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->isa, t.isa);
  ASSERT_EQ(back->entries.size(), t.entries.size());
  for (std::size_t i = 0; i < t.entries.size(); ++i) {
    EXPECT_EQ(back->entries[i].n, t.entries[i].n);
    EXPECT_EQ(back->entries[i].best, t.entries[i].best);
    for (int s = 0; s < kNumBackends; ++s) {
      // %.17g serialization must round-trip measurements exactly.
      EXPECT_EQ(back->entries[i].seconds[s], t.entries[i].seconds[s]);
    }
  }
}

TEST_F(DispatchTest, ParseRejectsCorruptAndStaleCaches) {
  const std::string good = serialize_tune_table(small_table());
  ASSERT_TRUE(parse_tune_table(good).has_value());

  EXPECT_FALSE(parse_tune_table(""));
  EXPECT_FALSE(parse_tune_table("garbage\n"));
  EXPECT_FALSE(parse_tune_table(good.substr(0, good.size() / 2)));
  EXPECT_FALSE(parse_tune_table(good + "trailing junk\n"));

  // Foreign ISA: a table measured on another machine must be rejected.
  TuneTable alien = small_table();
  alien.isa = "sparc-viz";
  EXPECT_FALSE(parse_tune_table(serialize_tune_table(alien)));

  // Stale backend list: the guard against a future backend-set change.
  std::istringstream in(good);
  std::ostringstream out;
  std::string line;
  while (std::getline(in, line)) {
    if (line.rfind("backends ", 0) == 0) line = "backends scalar fixed-n";
    out << line << '\n';
  }
  EXPECT_FALSE(parse_tune_table(out.str()));

  // Entry-level damage: out-of-range n, unknown best, missing seconds.
  auto mutate = [&](const std::string& from, const std::string& to) {
    std::string text = good;
    auto pos = text.find(from);
    ASSERT_NE(pos, std::string::npos) << from;
    text.replace(pos, from.size(), to);
    EXPECT_FALSE(parse_tune_table(text)) << from << " -> " << to;
  };
  mutate("n 5 best", "n 1 best");
  mutate("n 12 best", "n 99 best");
  mutate("best fixed-n", "best banana");
  mutate("best scalar", "best");
}

TEST_F(DispatchTest, CacheFileRoundTripAndCorruptFileFallsBackToRetune) {
  const std::string path = "dispatch_cache_roundtrip.tmp";
  ASSERT_TRUE(save_tune_cache(small_table(), path));
  auto back = load_tune_cache(path);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->entries.size(), 2u);

  // Unreadable and corrupt files load as nullopt, never throw.
  EXPECT_FALSE(load_tune_cache("no/such/dir/cache.txt"));
  {
    std::ofstream f(path, std::ios::trunc);
    f << "cmtbone-kernel-tune v1\nisa " << isa_name() << "\nbroken";
  }
  EXPECT_FALSE(load_tune_cache(path));

  // ensure_tuned on the corrupt cache re-tunes (no abort), applies the
  // fresh result, and overwrites the file with a valid cache.
  TuneTable tuned = ensure_tuned({4}, path);
  ASSERT_EQ(tuned.entries.size(), 1u);
  EXPECT_EQ(tuned.entries[0].n, 4);
  EXPECT_EQ(selected_backend(4), tuned.entries[0].best);
  auto healed = load_tune_cache(path);
  ASSERT_TRUE(healed.has_value());
  ASSERT_EQ(healed->entries.size(), 1u);
  EXPECT_EQ(healed->entries[0].n, 4);
  EXPECT_EQ(healed->entries[0].best, tuned.entries[0].best);

  // A later startup loads the healed cache verbatim instead of re-tuning:
  // the measured seconds come back bit-identical, which fresh timing
  // could not reproduce.
  clear_tune_table();
  TuneTable again = ensure_tuned({4}, path);
  ASSERT_EQ(again.entries.size(), 1u);
  for (int s = 0; s < kNumBackends; ++s) {
    EXPECT_EQ(again.entries[0].seconds[s], tuned.entries[0].seconds[s]);
  }
  std::remove(path.c_str());
}

TEST_F(DispatchTest, AutotunePicksTheFastestMeasuredBackend) {
  TuneTable t = cmtbone::kernels::autotune({5});
  ASSERT_EQ(t.entries.size(), 1u);
  EXPECT_EQ(t.isa, isa_name());
  const TuneEntry& e = t.entries[0];
  EXPECT_EQ(e.n, 5);
  const int best = int(e.best);
  for (int s = 0; s < kNumBackends; ++s) {
    EXPECT_GT(e.seconds[s], 0.0) << backend_name(Backend(s));
    EXPECT_LE(e.seconds[best], e.seconds[s]) << backend_name(Backend(s));
  }
}

// --- forced-backend driver determinism ---------------------------------------

using Fields = std::vector<std::vector<double>>;

Config backend_config(Backend b, bool overlap, int threads) {
  Config cfg;
  cfg.physics = Physics::kEuler;
  cfg.face_backend = FaceBackend::kDirect;
  cfg.n = 4;
  cfg.ex = cfg.ey = cfg.ez = 3;
  cfg.fixed_dt = 1e-3;
  cfg.use_dssum = true;
  cfg.overlap = overlap;
  cfg.threads_per_rank = threads;
  cfg.kernel_backend = b;
  return cfg;
}

Fields collect_fields(Driver& driver) {
  Fields f;
  for (int i = 0; i < driver.nfields(); ++i) {
    auto s = driver.field(i);
    f.emplace_back(s.begin(), s.end());
  }
  return f;
}

std::vector<Fields> run_sim(int nranks, const Config& cfg, int steps) {
  std::vector<Fields> out(nranks);
  cmtbone::comm::run(nranks, [&](Comm& world) {
    Driver driver(world, cfg);
    driver.initialize(driver.default_ic());
    driver.run(steps);
    out[world.rank()] = collect_fields(driver);
  });
  return out;
}

void expect_bitwise_equal(const std::vector<Fields>& a,
                          const std::vector<Fields>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t r = 0; r < a.size(); ++r) {
    ASSERT_EQ(a[r].size(), b[r].size()) << "rank " << r;
    for (std::size_t f = 0; f < a[r].size(); ++f) {
      ASSERT_EQ(a[r][f].size(), b[r][f].size());
      for (std::size_t p = 0; p < a[r][f].size(); ++p) {
        ASSERT_EQ(a[r][f][p], b[r][f][p])
            << "rank " << r << " field " << f << " point " << p;
      }
    }
  }
}

TEST_F(DispatchTest, EveryForcedBackendBitIdenticalAcrossThreadsAndOverlap) {
  // The determinism contract per backend: whatever a backend computes, it
  // computes identically at every thread count and with overlap on or off
  // — and run to run. (Backends are NOT required to agree with each other
  // here; kSimdFma legitimately differs from kScalar by design.)
  const int nranks = 2, steps = 5;
  for (Backend b : all_backends()) {
    const Config serial = backend_config(b, /*overlap=*/false, /*threads=*/1);
    const auto want = run_sim(nranks, serial, steps);
    expect_bitwise_equal(want, run_sim(nranks, serial, steps));  // run-to-run
    for (bool overlap : {false, true}) {
      for (int threads : {2, 4}) {
        SCOPED_TRACE(::testing::Message()
                     << "backend=" << backend_name(b)
                     << " overlap=" << overlap << " threads=" << threads);
        expect_bitwise_equal(
            want, run_sim(nranks, backend_config(b, overlap, threads), steps));
      }
    }
    expect_bitwise_equal(
        want, run_sim(nranks, backend_config(b, true, 1), steps));
  }
  set_forced_backend(std::nullopt);  // Driver force is process-global
}

TEST_F(DispatchTest, EveryForcedBackendSurvivesChaoticCommunication) {
  // One chaos-seeded driver workload per backend: the chaos engine
  // perturbs message ordering and progress timing, which must never leak
  // into the numerics of any kernel backend.
  const int nranks = 2, steps = 4;
  std::uint64_t seed = 41;
  for (Backend b : all_backends()) {
    SCOPED_TRACE(::testing::Message() << "backend=" << backend_name(b)
                                      << " seed=" << seed);
    const Config cfg = backend_config(b, /*overlap=*/true, /*threads=*/2);
    const auto want = run_sim(nranks, cfg, steps);
    std::vector<Fields> got(nranks);
    chaosws::run_with_chaos(nranks, seed++, [&](Comm& world) {
      Driver driver(world, cfg);
      driver.initialize(driver.default_ic());
      driver.run(steps);
      got[world.rank()] = collect_fields(driver);
    });
    expect_bitwise_equal(want, got);
  }
  set_forced_backend(std::nullopt);
}

}  // namespace
