// Resilience: checkpoint format hardening (CRC32, torn-write safety, v1
// compatibility), the coordinated checkpoint/restore protocol (buddy
// replication, newest-globally-complete selection), failure detection
// (survivors observe RankFailed, not DeadlockDetected), and the recovery
// supervisor's bit-identical chaos-kill recovery matrix.

#include <gtest/gtest.h>

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <functional>
#include <map>
#include <mutex>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "chaos/chaos.hpp"
#include "comm/runtime.hpp"
#include "core/driver.hpp"
#include "io/checkpoint.hpp"
#include "resilience/checkpoint_coordinator.hpp"
#include "resilience/recovery.hpp"

namespace {

namespace fs = std::filesystem;

using cmtbone::chaos::ChaosAbortInjected;
using cmtbone::chaos::ChaosEngine;
using cmtbone::chaos::ChaosPolicy;
using cmtbone::comm::Comm;
using cmtbone::comm::DeadlockDetected;
using cmtbone::comm::JobAborted;
using cmtbone::comm::RankFailed;
using cmtbone::core::Config;
using cmtbone::core::Driver;
using cmtbone::resilience::CheckpointCoordinator;
using cmtbone::resilience::CheckpointOptions;
using cmtbone::resilience::RecoveryOptions;
using cmtbone::resilience::RecoveryPolicy;
using cmtbone::resilience::RecoveryReport;
using cmtbone::resilience::run_with_recovery;

std::uint64_t mix64(std::uint64_t x) {
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ull;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebull;
  x ^= x >> 31;
  return x;
}

class ResilienceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("cmtbone_res_" + std::to_string(::getpid()) + "_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    fs::create_directories(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  fs::path dir_;
};

// Small, fast geometry used by every coordinator/recovery test.
Config tiny_config() {
  Config cfg;
  cfg.n = 3;
  cfg.ex = cfg.ey = cfg.ez = 2;
  cfg.fixed_dt = 1e-3;
  return cfg;
}

// Write a checkpoint for a toy field and return its path and payload.
struct ToyCheckpoint {
  std::string path;
  std::vector<double> field;
  std::size_t points = 0;
};

ToyCheckpoint write_toy(const fs::path& dir, int rank = 3,
                        long long epoch = 12) {
  ToyCheckpoint toy;
  toy.points = std::size_t(3) * 3 * 3 * 2;
  toy.field.resize(toy.points);
  for (std::size_t i = 0; i < toy.points; ++i) toy.field[i] = 0.25 * double(i);
  cmtbone::io::CheckpointHeader header;
  header.n = 3;
  header.nel = 2;
  header.nfields = 1;
  header.steps = 7;
  header.time = 0.5;
  header.rank = rank;
  header.epoch = epoch;
  const double* fields[] = {toy.field.data()};
  toy.path = (dir / "toy.chk").string();
  cmtbone::io::write_checkpoint(
      toy.path, header, std::span<const double* const>(fields, 1), toy.points);
  return toy;
}

// ---- checkpoint format: CRC32, atomic writes, v1 compatibility --------------

TEST(Crc32, MatchesKnownVectors) {
  // The canonical IEEE CRC32 check value.
  EXPECT_EQ(cmtbone::io::crc32("123456789", 9), 0xcbf43926u);
  EXPECT_EQ(cmtbone::io::crc32("", 0), 0u);
  // Chunked == one-shot via the seed-chaining form.
  const std::uint32_t first = cmtbone::io::crc32("12345", 5);
  EXPECT_EQ(cmtbone::io::crc32("6789", 4, first), 0xcbf43926u);
}

TEST_F(ResilienceTest, V2RoundTripCarriesRankEpochAndLeavesNoTmp) {
  ToyCheckpoint toy = write_toy(dir_);
  std::vector<std::vector<double>> loaded;
  auto h = cmtbone::io::read_checkpoint(toy.path, &loaded);
  EXPECT_EQ(h.version, 2u);
  EXPECT_EQ(h.rank, 3);
  EXPECT_EQ(h.epoch, 12);
  ASSERT_EQ(loaded.size(), 1u);
  EXPECT_EQ(loaded[0], toy.field);
  // The atomic-write staging file must not survive a successful write.
  EXPECT_FALSE(fs::exists(toy.path + ".tmp"));
}

TEST_F(ResilienceTest, PayloadBitFlipThrowsChecksumMismatchWithContext) {
  ToyCheckpoint toy = write_toy(dir_, /*rank=*/5, /*epoch=*/42);
  {
    std::FILE* f = std::fopen(toy.path.c_str(), "r+b");
    ASSERT_NE(f, nullptr);
    ASSERT_EQ(std::fseek(f, long(cmtbone::io::kHeaderBytesV2) + 16, SEEK_SET),
              0);
    unsigned char b = 0;
    ASSERT_EQ(std::fread(&b, 1, 1, f), 1u);
    b ^= 0x01;  // single bit flip
    ASSERT_EQ(std::fseek(f, long(cmtbone::io::kHeaderBytesV2) + 16, SEEK_SET),
              0);
    ASSERT_EQ(std::fwrite(&b, 1, 1, f), 1u);
    std::fclose(f);
  }
  std::vector<std::vector<double>> fields;
  try {
    cmtbone::io::read_checkpoint(toy.path, &fields);
    FAIL() << "corrupt payload was accepted";
  } catch (const cmtbone::io::ChecksumMismatch& e) {
    EXPECT_EQ(e.path, toy.path);
    EXPECT_EQ(e.rank, 5);
    EXPECT_EQ(e.epoch, 42);
    EXPECT_NE(std::string(e.what()).find("CRC"), std::string::npos);
  }
}

TEST_F(ResilienceTest, TruncationMidHeaderAndMidPayloadAreRejected) {
  ToyCheckpoint toy = write_toy(dir_);
  const auto full = cmtbone::io::read_file(toy.path);
  // Mid-v1-header, between the v1 prefix and the v2 trailer, mid-payload.
  for (std::size_t keep :
       {std::size_t(17), cmtbone::io::kHeaderBytesV1 + 8,
        full.size() - 11}) {
    const std::string path = (dir_ / ("trunc" + std::to_string(keep))).string();
    std::ofstream out(path, std::ios::binary);
    out.write(reinterpret_cast<const char*>(full.data()),
              std::streamsize(keep));
    out.close();
    std::vector<std::vector<double>> fields;
    EXPECT_THROW(cmtbone::io::read_checkpoint(path, &fields),
                 std::runtime_error)
        << "accepted a file truncated to " << keep << " bytes";
  }
}

TEST_F(ResilienceTest, Version1CheckpointsStillRead) {
  // Hand-craft a v1 file: the 40-byte prefix (version = 1, no CRC trailer)
  // followed by the raw payload — what a pre-upgrade writer produced.
  std::vector<double> payload(8);  // n=2 -> 8 points/element, one element
  for (std::size_t i = 0; i < payload.size(); ++i) payload[i] = 1.5 * double(i);
  cmtbone::io::CheckpointHeader h;
  h.version = 1;
  h.n = 2;
  h.nel = 1;
  h.nfields = 1;
  h.steps = 9;
  h.time = 2.25;
  const std::string path = (dir_ / "v1.chk").string();
  {
    std::ofstream out(path, std::ios::binary);
    out.write(reinterpret_cast<const char*>(&h),
              std::streamsize(cmtbone::io::kHeaderBytesV1));
    out.write(reinterpret_cast<const char*>(payload.data()),
              std::streamsize(payload.size() * sizeof(double)));
  }
  std::vector<std::vector<double>> fields;
  auto back = cmtbone::io::read_checkpoint(path, &fields);
  EXPECT_EQ(back.version, 1u);
  EXPECT_EQ(back.steps, 9);
  EXPECT_DOUBLE_EQ(back.time, 2.25);
  // v2 trailer fields keep their "absent" defaults on a v1 read.
  EXPECT_EQ(back.rank, -1);
  EXPECT_EQ(back.epoch, -1);
  ASSERT_EQ(fields.size(), 1u);
  EXPECT_EQ(fields[0], payload);
}

// ---- coordinator: commit, prune, globally-complete selection ----------------

TEST_F(ResilienceTest, CoordinatorWritesPrimariesBuddiesAndPrunesRing) {
  const std::string dir = dir_.string();
  cmtbone::comm::run(2, [&](Comm& world) {
    Driver driver(world, tiny_config());
    driver.initialize(driver.default_ic());
    CheckpointOptions opt;
    opt.directory = dir;
    opt.interval = 2;
    CheckpointCoordinator coord(world, opt);
    driver.run(6, [&](Driver& d) { coord.maybe_checkpoint(d); });
    EXPECT_EQ(coord.last_epoch(), 6);
  });
  // Ring keeps epochs 4 and 6 (epoch 2 pruned), each with a primary per
  // rank and a buddy replica per rank.
  for (long long e : {4ll, 6ll}) {
    for (int r = 0; r < 2; ++r) {
      EXPECT_TRUE(fs::exists(
          CheckpointCoordinator::primary_path(dir, "ckpt", e, r)))
          << "epoch " << e << " rank " << r;
      EXPECT_TRUE(
          fs::exists(CheckpointCoordinator::buddy_path(dir, "ckpt", e, r)))
          << "epoch " << e << " rank " << r;
    }
  }
  for (int r = 0; r < 2; ++r) {
    EXPECT_FALSE(fs::exists(
        CheckpointCoordinator::primary_path(dir, "ckpt", 2, r)));
    EXPECT_FALSE(
        fs::exists(CheckpointCoordinator::buddy_path(dir, "ckpt", 2, r)));
  }
}

// Drive 6 steps with checkpoints at 2,4,6, damage files as `mutilate`
// dictates, then restore into fresh drivers and report the epoch.
long long restore_after(const std::string& dir,
                        const std::function<void()>& mutilate) {
  cmtbone::comm::run(2, [&](Comm& world) {
    Driver driver(world, tiny_config());
    driver.initialize(driver.default_ic());
    CheckpointOptions opt;
    opt.directory = dir;
    opt.interval = 2;
    CheckpointCoordinator coord(world, opt);
    driver.run(6, [&](Driver& d) { coord.maybe_checkpoint(d); });
  });
  mutilate();
  std::atomic<long long> restored{-2};
  cmtbone::comm::run(2, [&](Comm& world) {
    Driver driver(world, tiny_config());
    CheckpointOptions opt;
    opt.directory = dir;
    CheckpointCoordinator coord(world, opt);
    const long long epoch = coord.restore_latest(driver);
    if (epoch >= 0) {
      EXPECT_EQ(driver.steps_taken(), epoch);
    }
    if (world.rank() == 0) restored.store(epoch);
  });
  return restored.load();
}

TEST_F(ResilienceTest, RestorePicksNewestEpochWhenAllFilesIntact) {
  EXPECT_EQ(restore_after(dir_.string(), [] {}), 6);
}

TEST_F(ResilienceTest, RestoreFallsBackToBuddyWhenPrimaryCorrupt) {
  const std::string dir = dir_.string();
  EXPECT_EQ(restore_after(dir,
                          [&] {
                            // Corrupt rank 1's newest primary; its buddy
                            // replica still vouches for epoch 6.
                            const std::string p =
                                CheckpointCoordinator::primary_path(dir, "ckpt",
                                                                    6, 1);
                            std::FILE* f = std::fopen(p.c_str(), "r+b");
                            ASSERT_NE(f, nullptr);
                            std::fseek(f, 60, SEEK_SET);
                            unsigned char junk = 0xa5;
                            std::fwrite(&junk, 1, 1, f);
                            std::fclose(f);
                          }),
            6);
}

TEST_F(ResilienceTest, RestoreDropsToOlderEpochWhenPrimaryAndBuddyLost) {
  const std::string dir = dir_.string();
  EXPECT_EQ(restore_after(dir,
                          [&] {
                            // Epoch 6 is not globally complete anymore:
                            // rank 1 lost both of its copies.
                            fs::remove(CheckpointCoordinator::primary_path(
                                dir, "ckpt", 6, 1));
                            fs::remove(CheckpointCoordinator::buddy_path(
                                dir, "ckpt", 6, 1));
                          }),
            4);
}

TEST_F(ResilienceTest, RestoreHandlesMixedNewestEpochsAcrossRanks) {
  const std::string dir = dir_.string();
  // Rank 0 keeps epoch 6, rank 1's newest surviving epoch is 4 (both its
  // epoch-6 copies gone): the newest *globally complete* epoch is 4.
  EXPECT_EQ(restore_after(dir,
                          [&] {
                            fs::remove(CheckpointCoordinator::primary_path(
                                dir, "ckpt", 6, 1));
                            fs::remove(CheckpointCoordinator::buddy_path(
                                dir, "ckpt", 6, 1));
                            // Also corrupt rank 0's epoch-4 primary: rank 0
                            // must fall back to its buddy for the common
                            // epoch.
                            const std::string p =
                                CheckpointCoordinator::primary_path(dir, "ckpt",
                                                                    4, 0);
                            std::FILE* f = std::fopen(p.c_str(), "r+b");
                            ASSERT_NE(f, nullptr);
                            std::fseek(f, 70, SEEK_SET);
                            unsigned char junk = 0x5a;
                            std::fwrite(&junk, 1, 1, f);
                            std::fclose(f);
                          }),
            4);
}

TEST_F(ResilienceTest, RestoreReturnsMinusOneWithNoCheckpoints) {
  std::atomic<long long> restored{-2};
  const std::string dir = dir_.string();
  cmtbone::comm::run(2, [&](Comm& world) {
    Driver driver(world, tiny_config());
    CheckpointOptions opt;
    opt.directory = dir;
    CheckpointCoordinator coord(world, opt);
    if (world.rank() == 0) restored.store(coord.restore_latest(driver));
    else coord.restore_latest(driver);
  });
  EXPECT_EQ(restored.load(), -1);
}

// ---- failure detection: survivors see RankFailed, not DeadlockDetected -----

TEST(FailureDetection, SurvivorsObserveRankFailedWithEpochAcrossSeeds) {
  for (std::uint64_t seed : {1ull, 2ull, 3ull, 4ull}) {
    ChaosEngine engine(ChaosPolicy::for_seed(seed, 3), 3);
    cmtbone::prof::RecoveryStats stats;
    cmtbone::comm::RunOptions options;
    options.chaos = &engine;
    options.recovery = &stats;
    options.epoch = 7;

    std::atomic<int> rank_failed_seen{0};
    std::atomic<int> wrong_exception{0};
    try {
      cmtbone::comm::run(
          3,
          [&](Comm& world) {
            if (world.rank() == 1) {
              throw std::runtime_error("injected user failure");
            }
            try {
              // Blocks forever: rank 1 never sends. Without failure
              // propagation this would trip the deadlock detector.
              long long v = 0;
              world.recv(std::span<long long>(&v, 1), 1, 5);
            } catch (const RankFailed& e) {
              EXPECT_EQ(e.failed_rank, 1);
              EXPECT_EQ(e.epoch, 7);
              rank_failed_seen.fetch_add(1);
              throw;
            } catch (const DeadlockDetected&) {
              wrong_exception.fetch_add(1);
              throw;
            }
          },
          options);
      FAIL() << "the origin's exception must be rethrown";
    } catch (const std::runtime_error& e) {
      EXPECT_NE(std::string(e.what()).find("injected user failure"),
                std::string::npos);
    }
    EXPECT_EQ(rank_failed_seen.load(), 2) << "seed " << seed;
    EXPECT_EQ(wrong_exception.load(), 0) << "seed " << seed;
    EXPECT_EQ(stats.detections, 2) << "seed " << seed;
    EXPECT_GE(stats.detection_seconds_max, 0.0);
    EXPECT_GE(stats.detection_seconds_sum, 0.0);
  }
}

TEST(FailureDetection, CollectiveSurvivorsUnwindOnPeerFailure) {
  // Ranks blocked inside a collective tree (not a plain recv) must also
  // observe the failure and unwind; nobody may hang or misdiagnose
  // deadlock.
  std::atomic<int> unwound{0};
  try {
    cmtbone::comm::run(4, [&](Comm& world) {
      if (world.rank() == 2) throw std::runtime_error("die in collective");
      try {
        for (;;) {
          (void)world.allreduce_one<long long>(1, cmtbone::comm::ReduceOp::kSum);
        }
      } catch (const JobAborted&) {
        unwound.fetch_add(1);
        throw;
      }
    });
    FAIL() << "expected the origin exception";
  } catch (const std::runtime_error&) {
  }
  EXPECT_EQ(unwound.load(), 3);
}

// ---- unwind safety of the split-phase paths under chaos aborts --------------

TEST(UnwindSafety, GsSplitPhaseAndOverlapSurviveAbortSweep) {
  // Kill rank 1 at a sweep of operation counts while the overlap path has
  // irecvs posted into gs/face-exchange buffers. Every run must either
  // complete or unwind cleanly — no use-after-free (ASan job), no hang, no
  // spurious deadlock verdict. Exercises exec_many_begin/finish and
  // FaceExchange begin/finish unwind paths.
  Config cfg = tiny_config();
  cfg.overlap = true;
  cfg.face_backend = cmtbone::core::FaceBackend::kGatherScatter;
  cfg.gs_method = cmtbone::gs::Method::kPairwise;
  for (long long abort_op : {2ll, 7ll, 19ll, 41ll, 71ll, 113ll}) {
    ChaosPolicy policy;
    policy.seed = 77;
    policy.abort_rank = 1;
    policy.abort_at_op = abort_op;
    ChaosEngine engine(policy, 2);
    cmtbone::comm::RunOptions options;
    options.chaos = &engine;
    bool threw = false;
    try {
      cmtbone::comm::run(
          2,
          [&](Comm& world) {
            Driver driver(world, cfg);
            driver.initialize(driver.default_ic());
            driver.run(3);
          },
          options);
    } catch (const ChaosAbortInjected&) {
      threw = true;
    }
    EXPECT_TRUE(threw) << "abort_at_op " << abort_op
                       << " never fired; widen the sweep";
  }
}

// ---- recovery supervisor: bit-identical recovery matrix ---------------------

// Capture every rank's full field state after the last step.
using FieldDump = std::map<int, std::vector<std::vector<double>>>;

std::function<void(Driver&, Comm&)> capture_into(FieldDump* dump,
                                                 std::mutex* mu) {
  return [dump, mu](Driver& d, Comm& world) {
    std::vector<std::vector<double>> mine(std::size_t(d.nfields()));
    for (int f = 0; f < d.nfields(); ++f) {
      auto span = d.field(f);
      mine[std::size_t(f)].assign(span.begin(), span.end());
    }
    std::lock_guard<std::mutex> lock(*mu);
    (*dump)[world.rank()] = std::move(mine);
  };
}

void expect_bit_identical(const FieldDump& a, const FieldDump& b,
                          const std::string& label) {
  ASSERT_EQ(a.size(), b.size()) << label;
  for (const auto& [rank, fields] : a) {
    auto it = b.find(rank);
    ASSERT_NE(it, b.end()) << label << " rank " << rank;
    ASSERT_EQ(fields.size(), it->second.size()) << label << " rank " << rank;
    for (std::size_t f = 0; f < fields.size(); ++f) {
      ASSERT_EQ(fields[f].size(), it->second[f].size())
          << label << " rank " << rank << " field " << f;
      for (std::size_t i = 0; i < fields[f].size(); ++i) {
        // Exact binary equality, not a tolerance: recovery replays the
        // deterministic solver from committed bytes.
        ASSERT_EQ(fields[f][i], it->second[f][i])
            << label << " rank " << rank << " field " << f << " index " << i;
      }
    }
  }
}

void run_recovery_matrix(int nranks, const fs::path& scratch,
                         int threads_per_rank = 1) {
  constexpr int kSteps = 9;
  constexpr int kInterval = 3;
  struct Variant {
    const char* name;
    cmtbone::core::FaceBackend backend;
    cmtbone::gs::Method method;
    bool overlap;
  };
  const Variant variants[] = {
      {"direct", cmtbone::core::FaceBackend::kDirect,
       cmtbone::gs::Method::kPairwise, false},
      {"direct+overlap", cmtbone::core::FaceBackend::kDirect,
       cmtbone::gs::Method::kPairwise, true},
      {"gs-crystal", cmtbone::core::FaceBackend::kGatherScatter,
       cmtbone::gs::Method::kCrystalRouter, false},
      {"gs-crystal+overlap", cmtbone::core::FaceBackend::kGatherScatter,
       cmtbone::gs::Method::kCrystalRouter, true},
  };
  for (const Variant& v : variants) {
    Config cfg = tiny_config();
    cfg.face_backend = v.backend;
    cfg.gs_method = v.method;
    cfg.overlap = v.overlap;
    cfg.threads_per_rank = 1;

    // Uninterrupted baseline, always serial: the kill/recover re-run below
    // uses threads_per_rank, so a threaded matrix also proves threaded
    // recovery lands on the serial answer bit for bit.
    FieldDump baseline;
    std::mutex mu;
    cmtbone::comm::run(nranks, [&](Comm& world) {
      Driver driver(world, cfg);
      driver.initialize(driver.default_ic());
      driver.run(kSteps);
      capture_into(&baseline, &mu)(driver, world);
    });
    cfg.threads_per_rank = threads_per_rank;

    for (std::uint64_t seed = 1; seed <= 8; ++seed) {
      const std::string label = std::string(v.name) + " ranks " +
                                std::to_string(nranks) + " seed " +
                                std::to_string(seed);
      fs::path dir = scratch / (std::string(v.name) + "_s" +
                                std::to_string(seed));
      fs::create_directories(dir);

      ChaosPolicy policy = ChaosPolicy::for_seed(seed, nranks);
      // Seed-derived kill placement sweeps early/mid/late steps and every
      // rank; one-shot so the recovered re-run completes.
      policy.kill_rank = int(mix64(seed * 1000003ull) % std::uint64_t(nranks));
      policy.kill_step = 1 + (long long)(mix64(seed * 7919ull) %
                                         std::uint64_t(kSteps));
      ChaosEngine engine(policy, nranks);

      FieldDump recovered;
      RecoveryPolicy rpolicy;
      rpolicy.max_retries = 3;
      rpolicy.backoff_initial_ms = 0.1;
      RecoveryOptions options;
      options.checkpoint.directory = dir.string();
      options.checkpoint.interval = kInterval;
      options.chaos = &engine;
      options.on_final = capture_into(&recovered, &mu);

      RecoveryReport report =
          run_with_recovery(nranks, cfg, kSteps, rpolicy, options);
      EXPECT_TRUE(report.completed) << label;
      EXPECT_GE(report.failures, 1) << label << ": kill never fired";
      EXPECT_GE(report.attempts, 2) << label;
      EXPECT_GE(report.stats.checkpoints, 1) << label;
      if (nranks > 1) {
        EXPECT_GE(report.stats.detections, 1) << label;
      }
      expect_bit_identical(baseline, recovered, label);
      fs::remove_all(dir);
    }
  }
}

TEST_F(ResilienceTest, RecoveryMatrix1Rank) { run_recovery_matrix(1, dir_); }
TEST_F(ResilienceTest, RecoveryMatrix2Ranks) { run_recovery_matrix(2, dir_); }
TEST_F(ResilienceTest, RecoveryMatrix4Ranks) { run_recovery_matrix(4, dir_); }
TEST_F(ResilienceTest, RecoveryMatrix2RanksThreaded) {
  // Chaos kill + checkpoint recovery with the worker pool active: the
  // mid-flight unwind must never leave a pool region dangling, and the
  // recovered threaded run must reproduce the serial baseline.
  run_recovery_matrix(2, dir_, /*threads_per_rank=*/2);
}

TEST_F(ResilienceTest, RecoverySurvivesCorruptPrimaryViaBuddy) {
  // Kill after epoch 6 committed, with rank 1's epoch-6 primary corrupted
  // at write time: recovery must restore epoch 6 from the buddy replica,
  // not silently fall back further, and still finish bit-identically.
  Config cfg = tiny_config();
  FieldDump baseline, recovered;
  std::mutex mu;
  cmtbone::comm::run(2, [&](Comm& world) {
    Driver driver(world, cfg);
    driver.initialize(driver.default_ic());
    driver.run(9);
    capture_into(&baseline, &mu)(driver, world);
  });

  ChaosPolicy policy;
  policy.seed = 5;
  policy.kill_rank = 0;
  policy.kill_step = 8;
  policy.corrupt_rank = 1;
  policy.corrupt_epoch = 6;
  ChaosEngine engine(policy, 2);
  RecoveryPolicy rpolicy;
  rpolicy.backoff_initial_ms = 0.1;
  RecoveryOptions options;
  options.checkpoint.directory = dir_.string();
  options.checkpoint.interval = 3;
  options.chaos = &engine;
  options.on_final = capture_into(&recovered, &mu);

  RecoveryReport report = run_with_recovery(2, cfg, 9, rpolicy, options);
  EXPECT_TRUE(report.completed);
  EXPECT_EQ(report.last_restored_epoch, 6);
  EXPECT_GE(report.stats.restores, 1);
  expect_bit_identical(baseline, recovered, "corrupt-primary");
}

TEST_F(ResilienceTest, RecoveryGivesUpAfterMaxRetries) {
  // abort_at_op (unlike kill_step) is NOT one-shot: the shared engine's op
  // counter keeps climbing, so every attempt dies and the supervisor must
  // eventually rethrow.
  ChaosPolicy policy;
  policy.seed = 13;
  policy.abort_rank = 0;
  policy.abort_at_op = 5;
  ChaosEngine engine(policy, 2);
  RecoveryPolicy rpolicy;
  rpolicy.max_retries = 2;
  rpolicy.backoff_initial_ms = 0.1;
  RecoveryOptions options;
  options.checkpoint.directory = dir_.string();
  options.checkpoint.interval = 3;
  options.chaos = &engine;
  EXPECT_THROW(run_with_recovery(2, tiny_config(), 6, rpolicy, options),
               ChaosAbortInjected);
}

TEST_F(ResilienceTest, RecoveryRequiresCheckpointDirectory) {
  RecoveryOptions options;  // no directory
  EXPECT_THROW(run_with_recovery(1, tiny_config(), 1, {}, options),
               std::invalid_argument);
}

// ---- decorrelated retry backoff --------------------------------------------

TEST(JitteredBackoff, ZeroJitterKeepsTheExactSchedule) {
  RecoveryPolicy policy;  // backoff_jitter defaults to 0
  for (int attempt = 0; attempt < 5; ++attempt) {
    EXPECT_EQ(cmtbone::resilience::jittered_backoff_ms(policy, attempt, 8.0),
              8.0);
  }
}

TEST(JitteredBackoff, DrawsAreBoundedAndSeedDeterministic) {
  RecoveryPolicy policy;
  policy.backoff_jitter = 0.5;
  policy.backoff_seed = 42;
  bool saw_variation = false;
  for (int attempt = 0; attempt < 32; ++attempt) {
    const double ms =
        cmtbone::resilience::jittered_backoff_ms(policy, attempt, 10.0);
    EXPECT_GE(ms, 5.0) << "attempt " << attempt;   // >= (1 - jitter) * base
    EXPECT_LE(ms, 10.0) << "attempt " << attempt;  // never longer than base
    EXPECT_EQ(ms,
              cmtbone::resilience::jittered_backoff_ms(policy, attempt, 10.0))
        << "attempt " << attempt;  // pure in (seed, attempt)
    if (ms != 10.0) saw_variation = true;
  }
  EXPECT_TRUE(saw_variation);
}

TEST(JitteredBackoff, SeedsDecorrelateTheHerd) {
  // Two jobs restarting off the same failure must not sleep in lockstep:
  // distinct seeds must produce distinct schedules somewhere early.
  RecoveryPolicy a, b;
  a.backoff_jitter = b.backoff_jitter = 0.5;
  a.backoff_seed = 1;
  b.backoff_seed = 2;
  bool differ = false;
  for (int attempt = 0; attempt < 8 && !differ; ++attempt) {
    differ = cmtbone::resilience::jittered_backoff_ms(a, attempt, 10.0) !=
             cmtbone::resilience::jittered_backoff_ms(b, attempt, 10.0);
  }
  EXPECT_TRUE(differ);
}

TEST(JitteredBackoff, OutOfRangeJitterIsClamped) {
  RecoveryPolicy policy;
  policy.backoff_jitter = 7.0;  // clamped to 1: sleeps in [0, base]
  policy.backoff_seed = 3;
  for (int attempt = 0; attempt < 16; ++attempt) {
    const double ms =
        cmtbone::resilience::jittered_backoff_ms(policy, attempt, 10.0);
    EXPECT_GE(ms, 0.0);
    EXPECT_LE(ms, 10.0);
  }
}

// ---- checkpoint-ring pruning -----------------------------------------------

TEST_F(ResilienceTest, PruneKeepsNewestIgnoresForeignAndStagingFiles) {
  // Pre-seed the directory with what a prune scan can encounter: this
  // rank's stale primaries (epochs 1..5), another job's/rank's files, and
  // an in-progress atomic write's .tmp staging file. Content is irrelevant
  // to pruning — it goes by names only and must only ever delete files
  // this rank wrote.
  const std::string prefix = "ckpt";
  auto touch = [&](const std::string& name) {
    std::ofstream out(dir_ / name, std::ios::binary);
    out << "x";
  };
  for (long long e = 1; e <= 5; ++e) {
    touch(fs::path(CheckpointCoordinator::primary_path(dir_.string(), prefix,
                                                       e, 0))
              .filename()
              .string());
  }
  touch("ckpt.e000002.r00001.chk");       // foreign rank's primary
  touch("ckpt.e000001.r00000.chk.tmp");   // concurrent writer's staging file
  touch("other.e000001.r00000.chk");      // different prefix entirely

  cmtbone::comm::run(1, [&](Comm& world) {
    Driver driver(world, tiny_config());
    driver.initialize(driver.default_ic());
    driver.run(6);
    CheckpointOptions opt;
    opt.directory = dir_.string();
    opt.prefix = prefix;
    opt.interval = 0;  // explicit checkpoints only
    opt.keep_epochs = 2;
    CheckpointCoordinator coord(world, opt);
    EXPECT_EQ(coord.checkpoint_now(driver), 6);
  });

  // Two newest epochs of this rank's primaries survive (5 and the fresh 6);
  // everything older is gone; everything not ours is untouched.
  auto exists = [&](const std::string& name) {
    return fs::exists(dir_ / name);
  };
  for (long long e = 1; e <= 4; ++e) {
    EXPECT_FALSE(fs::exists(
        CheckpointCoordinator::primary_path(dir_.string(), prefix, e, 0)))
        << "epoch " << e;
  }
  EXPECT_TRUE(fs::exists(
      CheckpointCoordinator::primary_path(dir_.string(), prefix, 5, 0)));
  EXPECT_TRUE(fs::exists(
      CheckpointCoordinator::primary_path(dir_.string(), prefix, 6, 0)));
  EXPECT_TRUE(exists("ckpt.e000002.r00001.chk"));
  EXPECT_TRUE(exists("ckpt.e000001.r00000.chk.tmp"));
  EXPECT_TRUE(exists("other.e000001.r00000.chk"));
}

TEST_F(ResilienceTest, PruneRacingAConcurrentWriterKeepsTheRingRestorable) {
  // A second writer mutates the directory the whole time the coordinator
  // checkpoints and prunes: publishing foreign-rank files via the same
  // atomic tmp+rename path (so staging files appear and vanish mid-scan)
  // and fsyncing its own churn. The prune must never touch the foreign
  // files, never delete this rank's newest epochs, and leave the ring
  // restorable when the dust settles.
  const std::string prefix = "ckpt";
  std::atomic<bool> stop{false};
  std::atomic<int> foreign_published{0};
  std::thread writer([&] {
    const std::vector<std::byte> payload(128, std::byte{0x5c});
    int i = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      const std::string path = CheckpointCoordinator::primary_path(
          dir_.string(), prefix, 1000 + i, /*rank=*/7);
      cmtbone::io::write_file_atomic(path, payload);
      foreign_published.fetch_add(1, std::memory_order_relaxed);
      ++i;
    }
  });

  const int steps = 30;
  cmtbone::comm::run(1, [&](Comm& world) {
    Driver driver(world, tiny_config());
    driver.initialize(driver.default_ic());
    CheckpointOptions opt;
    opt.directory = dir_.string();
    opt.prefix = prefix;
    opt.interval = 1;  // checkpoint + prune at every step, maximal churn
    opt.keep_epochs = 2;
    CheckpointCoordinator coord(world, opt);
    driver.run(steps, [&](Driver& d) { coord.maybe_checkpoint(d); });
  });
  stop.store(true);
  writer.join();

  // The ring: exactly the two newest epochs remain restorable...
  int mine = 0;
  for (long long e = 1; e <= steps; ++e) {
    if (fs::exists(
            CheckpointCoordinator::primary_path(dir_.string(), prefix, e, 0))) {
      ++mine;
      EXPECT_GE(e, steps - 1) << "stale epoch survived the prune";
    }
  }
  EXPECT_EQ(mine, 2);
  // ...and they genuinely restore to the newest epoch.
  cmtbone::comm::run(1, [&](Comm& world) {
    Driver driver(world, tiny_config());
    CheckpointOptions opt;
    opt.directory = dir_.string();
    opt.prefix = prefix;
    CheckpointCoordinator coord(world, opt);
    EXPECT_EQ(coord.restore_latest(driver), steps);
    EXPECT_EQ(driver.steps_taken(), steps);
  });
  // The concurrent writer lost nothing: every foreign file it published is
  // still there (prune only deletes files this rank wrote).
  int foreign = 0;
  for (const auto& entry : fs::directory_iterator(dir_)) {
    if (entry.path().filename().string().find(".r00007.chk") !=
        std::string::npos) {
      ++foreign;
    }
  }
  EXPECT_EQ(foreign, foreign_published.load());
}

}  // namespace
