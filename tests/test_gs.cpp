// Gather-scatter library: discovery, the three exchange algorithms, and
// agreement with a serial oracle.

#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "chaos/chaos.hpp"
#include "comm/runtime.hpp"
#include "core/driver.hpp"
#include "gs/crystal.hpp"
#include "gs/gather_scatter.hpp"
#include "mesh/numbering.hpp"
#include "mesh/partition.hpp"
#include "util/rng.hpp"

namespace {

using cmtbone::comm::Comm;
using cmtbone::gs::GatherScatter;
using cmtbone::gs::Method;
using cmtbone::gs::ReduceOp;

// Deterministic per-slot values derived from (seed, rank, slot).
double slot_value(std::uint64_t seed, int rank, std::size_t slot) {
  cmtbone::util::SplitMix64 rng(seed ^ (rank * 7919 + slot * 104729));
  return rng.uniform(-10.0, 10.0);
}

// Serial oracle: reduce values over all (rank, slot) pairs sharing an id.
std::map<long long, double> oracle_reduce(
    const std::vector<std::vector<long long>>& ids_per_rank,
    std::uint64_t seed, ReduceOp op) {
  std::map<long long, double> out;
  for (int r = 0; r < int(ids_per_rank.size()); ++r) {
    for (std::size_t s = 0; s < ids_per_rank[r].size(); ++s) {
      double v = slot_value(seed, r, s);
      auto [it, fresh] = out.try_emplace(ids_per_rank[r][s], v);
      if (!fresh) it->second = cmtbone::comm::apply(op, it->second, v);
    }
  }
  return out;
}

// Build per-rank slot ids from a mesh partition (the realistic workload).
std::vector<std::vector<long long>> mesh_ids(const cmtbone::mesh::BoxSpec& spec) {
  std::vector<std::vector<long long>> ids(spec.nranks());
  for (int r = 0; r < spec.nranks(); ++r) {
    cmtbone::mesh::Partition part(spec, r);
    ids[r] = cmtbone::mesh::global_gll_ids(part);
  }
  return ids;
}

cmtbone::mesh::BoxSpec small_spec(int px, int py, int pz) {
  cmtbone::mesh::BoxSpec s;
  s.n = 3;
  s.ex = 2 * px;
  s.ey = 2 * py;
  s.ez = 2 * pz;
  s.px = px;
  s.py = py;
  s.pz = pz;
  s.periodic = true;
  return s;
}

void check_method_against_oracle(const cmtbone::mesh::BoxSpec& spec,
                                 Method method, ReduceOp op,
                                 std::uint64_t seed) {
  auto ids = mesh_ids(spec);
  auto expected = oracle_reduce(ids, seed, op);
  cmtbone::comm::run(spec.nranks(), [&](Comm& world) {
    const auto& my_ids = ids[world.rank()];
    GatherScatter gs(world, my_ids, method);
    std::vector<double> values(my_ids.size());
    for (std::size_t s = 0; s < values.size(); ++s) {
      values[s] = slot_value(seed, world.rank(), s);
    }
    gs.exec(std::span<double>(values), op);
    for (std::size_t s = 0; s < values.size(); ++s) {
      // Products of up to 8 contributions reach ~1e8; combine order differs
      // between methods and oracle, so tolerance is relative.
      double want = expected.at(my_ids[s]);
      ASSERT_NEAR(values[s], want, 1e-10 * std::max(1.0, std::abs(want)))
          << "rank=" << world.rank() << " slot=" << s;
    }
  });
}

struct GsCase {
  int px, py, pz;
  Method method;
  ReduceOp op;
};

class GsOracle : public ::testing::TestWithParam<GsCase> {};

TEST_P(GsOracle, MatchesSerialReduction) {
  const GsCase& c = GetParam();
  check_method_against_oracle(small_spec(c.px, c.py, c.pz), c.method, c.op,
                              1234);
}

std::vector<GsCase> gs_cases() {
  std::vector<GsCase> cases;
  const Method methods[] = {Method::kPairwise, Method::kCrystalRouter,
                            Method::kAllReduce};
  const ReduceOp ops[] = {ReduceOp::kSum, ReduceOp::kMin, ReduceOp::kMax,
                          ReduceOp::kProd};
  for (Method m : methods) {
    for (ReduceOp op : ops) {
      cases.push_back({2, 1, 1, m, op});
      cases.push_back({2, 2, 1, m, op});
    }
    // 3-D decompositions and non-power-of-two rank counts, sum only.
    cases.push_back({2, 2, 2, m, ReduceOp::kSum});
    cases.push_back({3, 1, 1, m, ReduceOp::kSum});
    cases.push_back({3, 2, 1, m, ReduceOp::kSum});
    cases.push_back({5, 1, 1, m, ReduceOp::kSum});
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, GsOracle, ::testing::ValuesIn(gs_cases()),
    [](const ::testing::TestParamInfo<GsCase>& info) {
      const GsCase& c = info.param;
      std::string m = c.method == Method::kPairwise       ? "pairwise"
                      : c.method == Method::kCrystalRouter ? "crystal"
                                                            : "allreduce";
      return m + "_P" + std::to_string(c.px) + std::to_string(c.py) +
             std::to_string(c.pz) + "_op" +
             std::to_string(static_cast<int>(c.op));
    });

TEST(GsSetup, TopologyIdentifiesSharersExactly) {
  // 2 ranks, hand-built id sets: ids 5 and 7 shared, others private.
  cmtbone::comm::run(2, [](Comm& world) {
    std::vector<long long> ids = world.rank() == 0
                                     ? std::vector<long long>{1, 5, 7, 9}
                                     : std::vector<long long>{2, 5, 7, 11};
    auto topo = cmtbone::gs::gs_setup(world, ids);
    ASSERT_EQ(topo.shared.size(), 2u);
    EXPECT_EQ(topo.shared[0].id, 5);
    EXPECT_EQ(topo.shared[1].id, 7);
    int other = 1 - world.rank();
    for (const auto& sh : topo.shared) {
      ASSERT_EQ(sh.sharers.size(), 1u);
      EXPECT_EQ(sh.sharers[0], other);
    }
    EXPECT_EQ(topo.total_shared, 2);
  });
}

TEST(GsSetup, DuplicateLocalSlotsCollapse) {
  cmtbone::comm::run(2, [](Comm& world) {
    // Same id appears three times locally on rank 0.
    std::vector<long long> ids = world.rank() == 0
                                     ? std::vector<long long>{4, 4, 4, 8}
                                     : std::vector<long long>{4, 6};
    auto topo = cmtbone::gs::gs_setup(world, ids);
    if (world.rank() == 0) {
      EXPECT_EQ(topo.unique_ids.size(), 2u);
      EXPECT_EQ(topo.unique_of_slot[0], topo.unique_of_slot[1]);
      EXPECT_EQ(topo.unique_of_slot[1], topo.unique_of_slot[2]);
    }
    ASSERT_EQ(topo.shared.size(), 1u);
    EXPECT_EQ(topo.shared[0].id, 4);
  });
}

TEST(GsSetup, NoSharingMeansEmptyTopology) {
  cmtbone::comm::run(3, [](Comm& world) {
    std::vector<long long> ids = {world.rank() * 10 + 1, world.rank() * 10 + 2};
    auto topo = cmtbone::gs::gs_setup(world, ids);
    EXPECT_TRUE(topo.shared.empty());
    EXPECT_EQ(topo.total_shared, 0);
  });
}

TEST(GsOp, LocalGatherHandlesDuplicatesWithinRank) {
  // An id duplicated locally AND shared remotely: gs must fold local copies
  // first, then exchange, then write the result to every copy.
  cmtbone::comm::run(2, [](Comm& world) {
    std::vector<long long> ids = {100, 100, 7 + world.rank()};
    GatherScatter gs(world, ids, Method::kPairwise);
    std::vector<double> v = {1.0 + world.rank(), 10.0, 5.0};
    gs.exec(std::span<double>(v), ReduceOp::kSum);
    // id 100: rank0 contributes 1+10, rank1 contributes 2+10 -> 23.
    EXPECT_DOUBLE_EQ(v[0], 23.0);
    EXPECT_DOUBLE_EQ(v[1], 23.0);
    EXPECT_DOUBLE_EQ(v[2], 5.0);  // private id untouched
  });
}

TEST(GsOp, MultiplicityOfOnesCountsCopies) {
  // The dssum multiplicity trick: gs(add) over ones yields the number of
  // copies of each global point.
  auto spec = small_spec(2, 2, 1);
  auto ids = mesh_ids(spec);
  std::map<long long, int> copies;
  for (const auto& rank_ids : ids) {
    for (long long id : rank_ids) copies[id]++;
  }
  cmtbone::comm::run(spec.nranks(), [&](Comm& world) {
    const auto& my_ids = ids[world.rank()];
    GatherScatter gs(world, my_ids, Method::kCrystalRouter);
    std::vector<double> ones(my_ids.size(), 1.0);
    gs.exec(std::span<double>(ones), ReduceOp::kSum);
    for (std::size_t s = 0; s < ones.size(); ++s) {
      ASSERT_DOUBLE_EQ(ones[s], copies.at(my_ids[s]));
    }
  });
}

TEST(GsOp, RepeatedExecsAreIdempotentForMax) {
  auto spec = small_spec(2, 1, 1);
  auto ids = mesh_ids(spec);
  cmtbone::comm::run(spec.nranks(), [&](Comm& world) {
    const auto& my_ids = ids[world.rank()];
    GatherScatter gs(world, my_ids, Method::kPairwise);
    std::vector<double> v(my_ids.size());
    for (std::size_t s = 0; s < v.size(); ++s) {
      v[s] = slot_value(9, world.rank(), s);
    }
    gs.exec(std::span<double>(v), ReduceOp::kMax);
    std::vector<double> once = v;
    gs.exec(std::span<double>(v), ReduceOp::kMax);
    for (std::size_t s = 0; s < v.size(); ++s) {
      ASSERT_DOUBLE_EQ(v[s], once[s]);
    }
  });
}

TEST(GsOp, AllMethodsAgreeWithEachOther) {
  auto spec = small_spec(3, 2, 1);
  auto ids = mesh_ids(spec);
  cmtbone::comm::run(spec.nranks(), [&](Comm& world) {
    const auto& my_ids = ids[world.rank()];
    GatherScatter gs(world, my_ids, Method::kPairwise);
    std::vector<double> base(my_ids.size());
    for (std::size_t s = 0; s < base.size(); ++s) {
      base[s] = slot_value(77, world.rank(), s);
    }
    std::vector<double> a = base, b = base, c = base;
    gs.exec_with(std::span<double>(a), ReduceOp::kSum, Method::kPairwise);
    gs.exec_with(std::span<double>(b), ReduceOp::kSum, Method::kCrystalRouter);
    gs.exec_with(std::span<double>(c), ReduceOp::kSum, Method::kAllReduce);
    for (std::size_t s = 0; s < base.size(); ++s) {
      ASSERT_NEAR(a[s], b[s], 1e-11);
      ASSERT_NEAR(a[s], c[s], 1e-11);
    }
  });
}

// --- multi-field gs (gs_op_fields) --------------------------------------------

class GsManyMethods : public ::testing::TestWithParam<Method> {};

TEST_P(GsManyMethods, ExecManyMatchesPerFieldExec) {
  auto spec = small_spec(2, 2, 1);
  auto ids = mesh_ids(spec);
  const int nf = 3;
  cmtbone::comm::run(spec.nranks(), [&](Comm& world) {
    const auto& my_ids = ids[world.rank()];
    const std::size_t slots = my_ids.size();
    GatherScatter gs(world, my_ids, GetParam());

    // Field-major values; duplicate set for the per-field reference.
    std::vector<double> batched(nf * slots), reference(nf * slots);
    for (int f = 0; f < nf; ++f) {
      for (std::size_t s = 0; s < slots; ++s) {
        double v = slot_value(55 + f, world.rank(), s);
        batched[f * slots + s] = v;
        reference[f * slots + s] = v;
      }
    }
    gs.exec_many(std::span<double>(batched), nf, ReduceOp::kSum);
    for (int f = 0; f < nf; ++f) {
      gs.exec(std::span<double>(reference.data() + f * slots, slots),
              ReduceOp::kSum);
    }
    for (std::size_t i = 0; i < batched.size(); ++i) {
      ASSERT_NEAR(batched[i], reference[i], 1e-11) << "index " << i;
    }
  });
}

INSTANTIATE_TEST_SUITE_P(AllMethods, GsManyMethods,
                         ::testing::Values(Method::kPairwise,
                                           Method::kCrystalRouter,
                                           Method::kAllReduce),
                         [](const ::testing::TestParamInfo<Method>& info) {
                           switch (info.param) {
                             case Method::kPairwise: return "pairwise";
                             case Method::kCrystalRouter: return "crystal";
                             default: return "allreduce";
                           }
                         });

TEST(GsMany, SingleFieldDegeneratesToExec) {
  cmtbone::comm::run(2, [](Comm& world) {
    std::vector<long long> ids = {3, 9, 9};
    GatherScatter gs(world, ids, Method::kPairwise);
    std::vector<double> a = {1.0, 2.0, 3.0}, b = a;
    gs.exec(std::span<double>(a), ReduceOp::kMax);
    gs.exec_many(std::span<double>(b), 1, ReduceOp::kMax);
    for (int i = 0; i < 3; ++i) EXPECT_DOUBLE_EQ(a[i], b[i]);
  });
}

TEST(GsMany, FieldsDoNotContaminateEachOther) {
  // Field 0 all zeros, field 1 all ones: sums must stay field-local.
  cmtbone::comm::run(2, [](Comm& world) {
    std::vector<long long> ids = {42};  // one id shared by both ranks
    GatherScatter gs(world, ids, Method::kCrystalRouter);
    std::vector<double> v = {0.0, 1.0};  // [field0, field1]
    gs.exec_many(std::span<double>(v), 2, ReduceOp::kSum);
    EXPECT_DOUBLE_EQ(v[0], 0.0);
    EXPECT_DOUBLE_EQ(v[1], 2.0);
  });
}

// --- typed gs (gslib datatype set) ---------------------------------------------

TEST(GsTyped, LongLongSumAcrossAllMethods) {
  auto spec = small_spec(2, 2, 1);
  auto ids = mesh_ids(spec);
  // Oracle: copies per id (each slot contributes rank+1).
  std::map<long long, long long> oracle;
  for (int r = 0; r < spec.nranks(); ++r) {
    for (long long id : ids[r]) oracle[id] += r + 1;
  }
  for (Method m : {Method::kPairwise, Method::kCrystalRouter,
                   Method::kAllReduce}) {
    cmtbone::comm::run(spec.nranks(), [&](Comm& world) {
      const auto& my_ids = ids[world.rank()];
      GatherScatter gs(world, my_ids, m);
      std::vector<long long> v(my_ids.size(), world.rank() + 1);
      gs.exec_typed(std::span<long long>(v), ReduceOp::kSum);
      for (std::size_t s = 0; s < v.size(); ++s) {
        ASSERT_EQ(v[s], oracle.at(my_ids[s]))
            << cmtbone::gs::method_name(m) << " rank " << world.rank();
      }
    });
  }
}

TEST(GsTyped, IntMaxPicksLargestRank) {
  cmtbone::comm::run(3, [](Comm& world) {
    std::vector<long long> ids = {7, 100 + world.rank()};
    GatherScatter gs(world, ids, Method::kCrystalRouter);
    std::vector<int> v = {world.rank() * 10, -1};
    gs.exec_typed(std::span<int>(v), ReduceOp::kMax);
    EXPECT_EQ(v[0], 20);   // shared by all three ranks
    EXPECT_EQ(v[1], -1);   // private
  });
}

TEST(GsTyped, FloatMatchesDoubleWithinPrecision) {
  auto spec = small_spec(2, 1, 1);
  auto ids = mesh_ids(spec);
  cmtbone::comm::run(spec.nranks(), [&](Comm& world) {
    const auto& my_ids = ids[world.rank()];
    GatherScatter gs(world, my_ids, Method::kPairwise);
    std::vector<double> vd(my_ids.size());
    std::vector<float> vf(my_ids.size());
    for (std::size_t s = 0; s < my_ids.size(); ++s) {
      vd[s] = slot_value(31, world.rank(), s);
      vf[s] = float(vd[s]);
    }
    gs.exec(std::span<double>(vd), ReduceOp::kSum);
    gs.exec_typed(std::span<float>(vf), ReduceOp::kSum);
    for (std::size_t s = 0; s < my_ids.size(); ++s) {
      ASSERT_NEAR(vf[s], vd[s], 1e-4 * std::max(1.0, std::abs(vd[s])));
    }
  });
}

TEST(GsTyped, MultiFieldIntegers) {
  cmtbone::comm::run(2, [](Comm& world) {
    std::vector<long long> ids = {5};
    GatherScatter gs(world, ids, Method::kAllReduce);
    // Field 0 sums ranks, field 1 takes component-wise products... (sum op
    // applies to both fields; values differ per field).
    std::vector<int> v = {world.rank() + 1, (world.rank() + 1) * 100};
    gs.exec_many_typed(std::span<int>(v), 2, ReduceOp::kSum,
                       Method::kAllReduce);
    EXPECT_EQ(v[0], 3);
    EXPECT_EQ(v[1], 300);
  });
}

TEST(GsAuto, TuningPicksSomeMethodAndRecordsAllThree) {
  auto spec = small_spec(2, 2, 1);
  auto ids = mesh_ids(spec);
  cmtbone::comm::run(spec.nranks(), [&](Comm& world) {
    GatherScatter gs(world, ids[world.rank()], Method::kAuto);
    EXPECT_NE(gs.method(), Method::kAuto);
    ASSERT_EQ(gs.tuning().size(), 3u);
    for (const auto& row : gs.tuning()) {
      EXPECT_GE(row.min, 0.0);
      EXPECT_LE(row.min, row.avg + 1e-12);
      EXPECT_LE(row.avg, row.max + 1e-12);
    }
  });
}

// --- model-driven selection (Method::kModel) ------------------------------------

// Clears the process-wide calibrated machine on scope exit so a failing
// assertion cannot leak calibration into later tests.
struct CalibrationGuard {
  explicit CalibrationGuard(const cmtbone::netmodel::LogGPParams& p) {
    cmtbone::netmodel::set_calibrated_machine(p);
  }
  ~CalibrationGuard() { cmtbone::netmodel::clear_calibrated_machine(); }
};

TEST(GsModel, WithoutCalibrationFallsBackToMeasuredTuning) {
  cmtbone::netmodel::clear_calibrated_machine();
  auto spec = small_spec(2, 2, 1);
  auto ids = mesh_ids(spec);
  cmtbone::comm::run(spec.nranks(), [&](Comm& world) {
    GatherScatter gs(world, ids[world.rank()], Method::kModel);
    EXPECT_NE(gs.method(), Method::kModel);
    EXPECT_NE(gs.method(), Method::kAuto);
    // The fallback is tune(), which measures all three algorithms.
    EXPECT_EQ(gs.tuning().size(), 3u);
  });
}

TEST(GsModel, CalibratedSelectionAgreesAcrossRanks) {
  CalibrationGuard cal(cmtbone::netmodel::qdr_infiniband());
  auto spec = small_spec(2, 2, 1);
  auto ids = mesh_ids(spec);
  std::vector<Method> chosen(spec.nranks());
  cmtbone::comm::run(spec.nranks(), [&](Comm& world) {
    GatherScatter gs(world, ids[world.rank()], Method::kModel);
    EXPECT_NE(gs.method(), Method::kModel);
    // Predicted costs for all three algorithms back the choice.
    EXPECT_EQ(gs.tuning().size(), 3u);
    chosen[world.rank()] = gs.method();
  });
  // A rank-divergent pick would deadlock the collective algorithms; the
  // selector reduces predictions so every rank lands on one method.
  for (int r = 1; r < spec.nranks(); ++r) {
    EXPECT_EQ(chosen[r], chosen[0]) << "rank " << r;
  }
}

TEST(GsModel, ModelSelectionIsBitIdenticalToForcedMethod) {
  CalibrationGuard cal(cmtbone::netmodel::qdr_infiniband());
  auto spec = small_spec(2, 2, 1);
  auto ids = mesh_ids(spec);
  cmtbone::comm::run(spec.nranks(), [&](Comm& world) {
    GatherScatter model_gs(world, ids[world.rank()], Method::kModel);
    const Method picked = model_gs.method();
    GatherScatter forced_gs(world, ids[world.rank()], picked);

    const auto& my_ids = ids[world.rank()];
    std::vector<double> a(my_ids.size()), b(my_ids.size());
    for (std::size_t s = 0; s < my_ids.size(); ++s) {
      a[s] = b[s] = slot_value(17, world.rank(), s);
    }
    model_gs.exec(std::span<double>(a), ReduceOp::kSum);
    forced_gs.exec(std::span<double>(b), ReduceOp::kSum);
    for (std::size_t s = 0; s < my_ids.size(); ++s) {
      EXPECT_EQ(a[s], b[s]) << "slot " << s;  // exact, not approximate
    }
  });
}

TEST(GsModel, DriverFieldsBitIdenticalToForcedMethodAcrossRanksAndOverlap) {
  CalibrationGuard cal(cmtbone::netmodel::qdr_infiniband());
  for (int ranks : {1, 2, 4}) {
    for (bool overlap : {false, true}) {
      auto run_fields = [&](cmtbone::gs::Method method,
                            cmtbone::gs::Method* picked) {
        std::vector<std::vector<double>> fields;
        cmtbone::comm::run(ranks, [&](Comm& world) {
          cmtbone::core::Config cfg;
          cfg.n = 4;
          cfg.ex = cfg.ey = cfg.ez = 2;
          auto grid = cmtbone::mesh::BoxSpec::default_proc_grid(ranks);
          cfg.px = grid[0];
          cfg.py = grid[1];
          cfg.pz = grid[2];
          cfg.gs_method = method;
          cfg.overlap = overlap;
          cmtbone::core::Driver driver(world, cfg);
          driver.initialize(driver.default_ic());
          driver.run(2);
          if (world.rank() == 0) {
            if (picked != nullptr) {
              *picked = driver.gather_scatter().method();
            }
            for (int f = 0; f < driver.nfields(); ++f) {
              auto span = driver.field(f);
              fields.emplace_back(span.begin(), span.end());
            }
          }
        });
        return fields;
      };

      cmtbone::gs::Method picked = Method::kModel;
      const auto model_fields = run_fields(Method::kModel, &picked);
      ASSERT_NE(picked, Method::kModel);
      const auto forced_fields = run_fields(picked, nullptr);

      ASSERT_EQ(model_fields.size(), forced_fields.size());
      for (std::size_t f = 0; f < model_fields.size(); ++f) {
        ASSERT_EQ(model_fields[f].size(), forced_fields[f].size());
        for (std::size_t i = 0; i < model_fields[f].size(); ++i) {
          ASSERT_EQ(model_fields[f][i], forced_fields[f][i])
              << ranks << " ranks, overlap " << overlap << ", field " << f
              << ", node " << i;
        }
      }
    }
  }
}

TEST(GsModel, ReselectionAfterApplyLayoutAgreesAcrossRanks) {
  // Element migration rebuilds the topology, which re-runs the kModel
  // selection against the *new* exchange shape. The selection must resolve
  // to a concrete method and — because it feeds a collective exchange —
  // every rank must land on the same one, before and after the migration.
  CalibrationGuard cal(cmtbone::netmodel::qdr_infiniband());
  constexpr int kRanks = 4;
  std::vector<Method> before(kRanks, Method::kModel);
  std::vector<Method> after(kRanks, Method::kModel);
  cmtbone::comm::run(kRanks, [&](Comm& world) {
    cmtbone::core::Config cfg;
    cfg.n = 3;
    cfg.ex = cfg.ey = cfg.ez = 2;
    auto grid = cmtbone::mesh::BoxSpec::default_proc_grid(kRanks);
    cfg.px = grid[0];
    cfg.py = grid[1];
    cfg.pz = grid[2];
    cfg.gs_method = Method::kModel;
    cfg.fixed_dt = 1e-3;
    cmtbone::core::Driver driver(world, cfg);
    driver.initialize(driver.default_ic());
    driver.run(1);
    before[world.rank()] = driver.gather_scatter().method();

    // Rotate every element's owner by one rank: ownership changes for all
    // gids but each rank keeps the same element count.
    std::vector<int> owner = driver.element_layout().owner();
    for (int& r : owner) r = (r + 1) % kRanks;
    driver.apply_layout(owner);
    after[world.rank()] = driver.gather_scatter().method();
    driver.run(1);  // the re-selected handle must actually carry a step
  });
  for (int r = 0; r < kRanks; ++r) {
    EXPECT_NE(before[r], Method::kModel) << "rank " << r;
    EXPECT_NE(before[r], Method::kAuto) << "rank " << r;
    EXPECT_EQ(before[r], before[0]) << "rank " << r << " disagrees pre-move";
    EXPECT_NE(after[r], Method::kModel) << "rank " << r;
    EXPECT_NE(after[r], Method::kAuto) << "rank " << r;
    EXPECT_EQ(after[r], after[0]) << "rank " << r << " disagrees post-move";
  }
}

TEST(GsEdge, SingleRankHasNoSharersAndExecIsLocalOnly) {
  cmtbone::comm::run(1, [](Comm& world) {
    std::vector<long long> ids = {4, 4, 9};
    GatherScatter gs(world, ids, Method::kPairwise);
    EXPECT_TRUE(gs.topology().shared.empty());
    std::vector<double> v = {1.0, 2.0, 5.0};
    gs.exec(std::span<double>(v), ReduceOp::kSum);
    // Local duplicates still fold.
    EXPECT_DOUBLE_EQ(v[0], 3.0);
    EXPECT_DOUBLE_EQ(v[1], 3.0);
    EXPECT_DOUBLE_EQ(v[2], 5.0);
  });
}

TEST(GsEdge, EmptySlotListIsFine) {
  cmtbone::comm::run(2, [](Comm& world) {
    std::vector<long long> ids;
    if (world.rank() == 1) ids = {3, 4};
    GatherScatter gs(world, ids, Method::kCrystalRouter);
    std::vector<double> v(ids.size(), 2.0);
    gs.exec(std::span<double>(v), ReduceOp::kSum);
    if (world.rank() == 1) {
      EXPECT_DOUBLE_EQ(v[0], 2.0);  // nothing shared, values unchanged
    }
  });
}

TEST(GsEdge, TwoHandlesOnOneCommunicatorDoNotInterfere) {
  cmtbone::comm::run(2, [](Comm& world) {
    std::vector<long long> ids_a = {1, 2};
    std::vector<long long> ids_b = {2, 3};
    GatherScatter a(world, ids_a, Method::kPairwise);
    GatherScatter b(world, ids_b, Method::kPairwise);
    std::vector<double> va = {1.0, 1.0}, vb = {10.0, 10.0};
    a.exec(std::span<double>(va), ReduceOp::kSum);
    b.exec(std::span<double>(vb), ReduceOp::kSum);
    // Both ranks hold both ids, so every entry doubles within its handle.
    EXPECT_DOUBLE_EQ(va[0], 2.0);
    EXPECT_DOUBLE_EQ(vb[0], 20.0);
  });
}

TEST(GsStructure, PairwiseNeighborsAreFaceEdgeCornerRanks) {
  // On a periodic 2x2x1 grid each rank shares points with every other rank.
  auto spec = small_spec(2, 2, 1);
  auto ids = mesh_ids(spec);
  cmtbone::comm::run(spec.nranks(), [&](Comm& world) {
    GatherScatter gs(world, ids[world.rank()], Method::kPairwise);
    auto nbrs = gs.pairwise_neighbors();
    EXPECT_EQ(int(nbrs.size()), world.size() - 1);
    EXPECT_GT(gs.pairwise_send_values(), 0u);
    EXPECT_GT(gs.big_vector_size(), 0);
  });
}

// --- crystal router as a generic router ---------------------------------------

struct Rec {
  int payload;
  int check;
};

class CrystalRoute : public ::testing::TestWithParam<int> {};

TEST_P(CrystalRoute, DeliversEveryRecordToItsDestination) {
  const int p = GetParam();
  cmtbone::comm::run(p, [&](Comm& world) {
    cmtbone::gs::CrystalRouter router(world);
    // Every rank sends 3 records to every rank (including itself).
    std::vector<Rec> records;
    std::vector<int> dest;
    for (int d = 0; d < p; ++d) {
      for (int c = 0; c < 3; ++c) {
        records.push_back({world.rank() * 1000 + d * 10 + c, d});
        dest.push_back(d);
      }
    }
    auto got = router.route_records(std::span<const Rec>(records), dest);
    ASSERT_EQ(int(got.size()), 3 * p);
    // Expect exactly records {src*1000 + me*10 + c} for all src, c.
    std::vector<int> payloads;
    for (const Rec& r : got) {
      EXPECT_EQ(r.check, world.rank());
      payloads.push_back(r.payload);
    }
    std::sort(payloads.begin(), payloads.end());
    std::size_t pos = 0;
    for (int src = 0; src < p; ++src) {
      for (int c = 0; c < 3; ++c) {
        EXPECT_EQ(payloads[pos++], src * 1000 + world.rank() * 10 + c);
      }
    }
  });
}

TEST_P(CrystalRoute, EmptyInjectionIsFine) {
  const int p = GetParam();
  cmtbone::comm::run(p, [&](Comm& world) {
    cmtbone::gs::CrystalRouter router(world);
    auto got = router.route_records(std::span<const Rec>(), {});
    EXPECT_TRUE(got.empty());
  });
}

TEST_P(CrystalRoute, StageCountIsCeilLog2) {
  // Ranks in a smaller half may finish early; the deepest rank goes exactly
  // ceil(log2 P) stages.
  const int p = GetParam();
  if (p == 1) return;
  cmtbone::comm::run(p, [&](Comm& world) {
    cmtbone::gs::CrystalRouter router(world);
    std::vector<Rec> one = {{1, 0}};
    std::vector<int> dest = {0};
    router.route_records(std::span<const Rec>(one), dest);
    int expected = 0;
    while ((1 << expected) < p) ++expected;
    int deepest = int(world.allreduce_one(double(router.stages()),
                                          cmtbone::comm::ReduceOp::kMax));
    EXPECT_EQ(deepest, expected);
    EXPECT_LE(router.stages(), expected);
    EXPECT_GE(router.stages(), 1);
  });
}

INSTANTIATE_TEST_SUITE_P(RankCounts, CrystalRoute,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8, 11, 16));

// ---- degenerate topologies under chaos -------------------------------------
//
// Each case runs all three exchange algorithms against the serial oracle
// while a seeded ChaosEngine delays and reorders the runtime's messages.
// Degenerate sharing patterns exercise the empty-message and
// nothing-to-exchange paths, where a chaos hold with no follow-up traffic
// would expose any missed pump.

void check_gs_under_chaos(const std::vector<std::vector<long long>>& ids,
                          Method method, std::uint64_t chaos_seed) {
  const int p = int(ids.size());
  const std::uint64_t value_seed = 0xbeef;
  auto expected = oracle_reduce(ids, value_seed, ReduceOp::kSum);
  cmtbone::chaos::ChaosEngine engine(
      cmtbone::chaos::ChaosPolicy::for_seed(chaos_seed, p), p);
  cmtbone::comm::RunOptions options;
  options.chaos = &engine;
  cmtbone::comm::run(
      p,
      [&](Comm& world) {
        const auto& my_ids = ids[world.rank()];
        GatherScatter gs(world, my_ids, method);
        std::vector<double> values(my_ids.size());
        for (std::size_t s = 0; s < values.size(); ++s) {
          values[s] = slot_value(value_seed, world.rank(), s);
        }
        gs.exec(std::span<double>(values), ReduceOp::kSum);
        for (std::size_t s = 0; s < values.size(); ++s) {
          ASSERT_NEAR(values[s], expected.at(my_ids[s]), 1e-9)
              << "method=" << cmtbone::gs::method_name(method)
              << " rank=" << world.rank() << " slot=" << s;
        }
      },
      options);
}

const Method kAllGsMethods[] = {Method::kPairwise, Method::kCrystalRouter,
                                Method::kAllReduce};

TEST(GsChaos, SingleRankUnderChaos) {
  std::vector<std::vector<long long>> ids = {{0, 1, 2, 1, 0}};
  for (Method m : kAllGsMethods) {
    for (std::uint64_t seed : {1ull, 5ull, 9ull}) {
      check_gs_under_chaos(ids, m, seed);
    }
  }
}

TEST(GsChaos, EmptySharedSetUnderChaos) {
  // Disjoint id ranges: the nonlocal exchange has nothing to move.
  std::vector<std::vector<long long>> ids = {
      {0, 1, 2}, {10, 11, 12}, {20, 21, 22}, {30, 31, 32}};
  for (Method m : kAllGsMethods) {
    for (std::uint64_t seed : {1ull, 5ull, 9ull}) {
      check_gs_under_chaos(ids, m, seed);
    }
  }
}

TEST(GsChaos, AllIdsSharedByEveryRankUnderChaos) {
  // Every rank holds every id: maximal sharing, every pair exchanges.
  std::vector<std::vector<long long>> ids(4, {0, 1, 2, 3, 4, 5});
  for (Method m : kAllGsMethods) {
    for (std::uint64_t seed : {1ull, 5ull, 9ull}) {
      check_gs_under_chaos(ids, m, seed);
    }
  }
}

TEST(GsChaos, MeshPartitionUnderChaos) {
  // The realistic workload (mesh-derived ids) under a couple of seeds.
  auto ids = mesh_ids(small_spec(2, 2, 1));
  for (Method m : kAllGsMethods) {
    check_gs_under_chaos(ids, m, 3);
  }
}

}  // namespace
