// Utilities: aligned buffers, CLI parsing, RNG, tensor views, tables.

#include <gtest/gtest.h>

#include <cstdint>
#include <set>
#include <vector>

#include "util/aligned.hpp"
#include "util/bytes.hpp"
#include "util/cli.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"
#include "util/tensor.hpp"

namespace {

using cmtbone::util::AlignedBuffer;
using cmtbone::util::Cli;
using cmtbone::util::SplitMix64;

TEST(AlignedBuffer, AlignmentAndZeroInit) {
  AlignedBuffer<double> buf(37);
  EXPECT_EQ(buf.size(), 37u);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(buf.data()) % 64, 0u);
  for (double v : buf) EXPECT_EQ(v, 0.0);
}

TEST(AlignedBuffer, CopyAndMoveSemantics) {
  AlignedBuffer<int> a(5);
  for (std::size_t i = 0; i < a.size(); ++i) a[i] = int(i) * 3;
  AlignedBuffer<int> b = a;  // copy
  EXPECT_EQ(b[4], 12);
  b[4] = 99;
  EXPECT_EQ(a[4], 12);  // deep copy
  AlignedBuffer<int> c = std::move(a);
  EXPECT_EQ(c[4], 12);
  EXPECT_EQ(a.size(), 0u);  // NOLINT: moved-from is empty by contract
}

TEST(AlignedBuffer, ResetReallocatesZeroed) {
  AlignedBuffer<double> buf(4);
  buf.fill(7.0);
  buf.reset(10);
  EXPECT_EQ(buf.size(), 10u);
  for (double v : buf) EXPECT_EQ(v, 0.0);
}

TEST(CopyBytes, CopiesAndToleratesNullWithZeroLength) {
  // The degenerate-topology shape: an empty std::vector's data() may be
  // null, and raw memcpy(null, null, 0) is UB. copy_bytes must be a clean
  // no-op there and an exact copy otherwise.
  cmtbone::util::copy_bytes(nullptr, nullptr, 0);

  std::vector<double> empty_src, empty_dst;
  cmtbone::util::copy_bytes(empty_dst.data(), empty_src.data(), 0);
  cmtbone::util::copy_values(empty_dst.data(), empty_src.data(), 0);

  std::vector<int> src = {1, 2, 3, 4}, dst(4, 0);
  cmtbone::util::copy_bytes(dst.data(), src.data(), 4 * sizeof(int));
  EXPECT_EQ(dst, src);

  std::vector<double> dsrc = {0.5, -1.25, 3.75}, ddst(3, 0.0);
  cmtbone::util::copy_values(ddst.data(), dsrc.data(), dsrc.size());
  EXPECT_EQ(ddst, dsrc);
}

TEST(Cli, ParsesFlagsValuesAndPositionals) {
  // A bare flag followed by a positional is ambiguous, so positionals come
  // first (or flags use --key=value); see cli.hpp.
  const char* argv[] = {"prog", "input.txt", "--ranks", "16",
                        "--verbose", "--cfl=0.25"};
  Cli cli(6, argv);
  cli.describe("ranks", "").describe("verbose", "").describe("cfl", "");
  EXPECT_EQ(cli.get_int("ranks", 0), 16);
  EXPECT_TRUE(cli.has("verbose"));
  EXPECT_DOUBLE_EQ(cli.get_double("cfl", 0.0), 0.25);
  ASSERT_EQ(cli.positional().size(), 1u);
  EXPECT_EQ(cli.positional()[0], "input.txt");
  EXPECT_NO_THROW(cli.reject_unknown());
}

TEST(Cli, DefaultsApplyWhenAbsent) {
  const char* argv[] = {"prog"};
  Cli cli(1, argv);
  EXPECT_EQ(cli.get_int("n", 10), 10);
  EXPECT_EQ(cli.get("name", "x"), "x");
  EXPECT_FALSE(cli.help_requested());
}

TEST(Cli, RejectUnknownThrowsOnTypo) {
  const char* argv[] = {"prog", "--rnaks", "16"};
  Cli cli(3, argv);
  cli.describe("ranks", "rank count");
  EXPECT_THROW(cli.reject_unknown(), std::runtime_error);
}

TEST(Rng, DeterministicAndSeedSensitive) {
  SplitMix64 a(42), b(42), c(43);
  EXPECT_EQ(a.next(), b.next());
  SplitMix64 a2(42);
  EXPECT_NE(a2.next(), c.next());
}

TEST(Rng, UniformInRange) {
  SplitMix64 rng(7);
  for (int i = 0; i < 1000; ++i) {
    double v = rng.uniform(-2.0, 3.0);
    EXPECT_GE(v, -2.0);
    EXPECT_LT(v, 3.0);
  }
}

TEST(Rng, RankSeedsDistinct) {
  std::set<std::uint64_t> seeds;
  for (int r = 0; r < 256; ++r) {
    seeds.insert(cmtbone::util::rank_seed(1, r));
  }
  EXPECT_EQ(seeds.size(), 256u);
}

TEST(TensorView, ColumnMajorIndexing) {
  const int n = 3;
  std::vector<double> data(n * n * n * 2);
  for (std::size_t i = 0; i < data.size(); ++i) data[i] = double(i);
  cmtbone::util::FieldView<double> field(data.data(), n, 2);
  EXPECT_EQ(field(1, 0, 0, 0), 1.0);
  EXPECT_EQ(field(0, 1, 0, 0), 3.0);
  EXPECT_EQ(field(0, 0, 1, 0), 9.0);
  EXPECT_EQ(field(0, 0, 0, 1), 27.0);
  EXPECT_EQ(field.element(1).n(), n);
}

TEST(TensorView, MatrixViewIndexing) {
  std::vector<double> m = {1, 2, 3, 4};  // column-major 2x2
  cmtbone::util::MatrixView<double> view(m.data(), 2);
  EXPECT_EQ(view(0, 0), 1);
  EXPECT_EQ(view(1, 0), 2);
  EXPECT_EQ(view(0, 1), 3);
}

TEST(Table, FormatsAlignedColumns) {
  cmtbone::util::Table t({"name", "value"});
  t.add_row({"alpha", "1"});
  t.add_row({"b", "22.5"});
  std::string s = t.str();
  // Columns pad to max(header, cell) width: "value" is 5 wide.
  EXPECT_NE(s.find("| alpha | 1     |"), std::string::npos);
  EXPECT_NE(s.find("| b     | 22.5  |"), std::string::npos);
}

TEST(Table, CsvEscapesSpecialCells) {
  cmtbone::util::Table t({"name", "value"});
  t.add_row({"plain", "1"});
  t.add_row({"with,comma", "say \"hi\""});
  std::string csv = t.csv();
  EXPECT_NE(csv.find("name,value\n"), std::string::npos);
  EXPECT_NE(csv.find("plain,1\n"), std::string::npos);
  EXPECT_NE(csv.find("\"with,comma\",\"say \"\"hi\"\"\"\n"), std::string::npos);
}

TEST(Table, NumericHelpers) {
  EXPECT_EQ(cmtbone::util::Table::num(1.23456, 2), "1.23");
  EXPECT_EQ(cmtbone::util::Table::pct(0.125, 1), "12.5%");
  EXPECT_EQ(cmtbone::util::Table::sci(1234.5, 2), "1.23e+03");
}

}  // namespace
