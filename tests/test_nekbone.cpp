// Mini-Nekbone: operator properties, CG convergence, parallel agreement.

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include <algorithm>

#include "comm/runtime.hpp"
#include "mesh/numbering.hpp"
#include "nekbone/nekbone.hpp"

namespace {

using cmtbone::comm::Comm;
using cmtbone::nekbone::Nekbone;
using cmtbone::nekbone::NekboneConfig;

NekboneConfig small_config(int n = 5, int e = 2) {
  NekboneConfig cfg;
  cfg.n = n;
  cfg.ex = cfg.ey = cfg.ez = e;
  return cfg;
}

TEST(Nekbone, OperatorIsSymmetric) {
  cmtbone::comm::run(1, [](Comm& world) {
    Nekbone nb(world, small_config());
    const std::size_t pts = nb.points();
    // Continuous random vectors: evaluate smooth functions at nodes.
    std::vector<double> u(pts), v(pts), au(pts), av(pts);
    nb.evaluate([](double x, double y, double z) {
      return std::sin(2 * M_PI * x) * std::cos(2 * M_PI * y) + z * z;
    }, std::span<double>(u));
    nb.evaluate([](double x, double y, double z) {
      return std::cos(2 * M_PI * z) + x * y;
    }, std::span<double>(v));
    nb.apply_ax(u, std::span<double>(au));
    nb.apply_ax(v, std::span<double>(av));
    double uav = nb.dot(u, av);
    double vau = nb.dot(v, au);
    EXPECT_NEAR(uav, vau, 1e-10 * std::max(std::abs(uav), 1.0));
  });
}

TEST(Nekbone, OperatorIsPositiveDefinite) {
  cmtbone::comm::run(1, [](Comm& world) {
    Nekbone nb(world, small_config());
    const std::size_t pts = nb.points();
    std::vector<double> u(pts), au(pts);
    nb.evaluate([](double x, double y, double z) {
      return std::sin(2 * M_PI * x) + std::sin(4 * M_PI * y) + z;
    }, std::span<double>(u));
    nb.apply_ax(u, std::span<double>(au));
    EXPECT_GT(nb.dot(u, au), 0.0);
  });
}

TEST(Nekbone, ConstantVectorGivesMassTerm) {
  // K annihilates constants, so A*1 = h2 * M * 1 (then dssum'd); the
  // weighted dot <1, A 1> equals h2 * volume = h2 (unit box).
  cmtbone::comm::run(1, [](Comm& world) {
    NekboneConfig cfg = small_config();
    cfg.h2 = 0.7;
    Nekbone nb(world, cfg);
    std::vector<double> ones(nb.points(), 1.0), a(nb.points());
    nb.apply_ax(ones, std::span<double>(a));
    EXPECT_NEAR(nb.dot(ones, a), 0.7, 1e-10);
  });
}

TEST(Nekbone, CgSolvesManufacturedHelmholtzProblem) {
  // (-lap + h2) u = f with u = sin(2 pi x) sin(2 pi y) sin(2 pi z):
  // f = (12 pi^2 + h2) u. CG must recover u to spectral accuracy.
  cmtbone::comm::run(1, [](Comm& world) {
    NekboneConfig cfg;
    cfg.n = 8;
    cfg.ex = cfg.ey = cfg.ez = 2;
    cfg.h2 = 1.0;
    Nekbone nb(world, cfg);
    auto exact = [](double x, double y, double z) {
      return std::sin(2 * M_PI * x) * std::sin(2 * M_PI * y) *
             std::sin(2 * M_PI * z);
    };
    const double factor = 12.0 * M_PI * M_PI + cfg.h2;
    std::vector<double> b(nb.points()), x(nb.points(), 0.0), ue(nb.points());
    nb.assemble_rhs([&](double xx, double yy, double zz) {
      return factor * exact(xx, yy, zz);
    }, std::span<double>(b));
    auto result = nb.solve_cg(std::span<double>(x), b, 500, 1e-10);
    EXPECT_LT(result.residual, 1e-9);
    nb.evaluate(exact, std::span<double>(ue));
    double num = 0, den = 0;
    for (std::size_t i = 0; i < x.size(); ++i) {
      num = std::max(num, std::abs(x[i] - ue[i]));
      den = std::max(den, std::abs(ue[i]));
    }
    EXPECT_LT(num / den, 5e-4);
  });
}

TEST(Nekbone, CgResidualDecreasesMonotonicallyToTolerance) {
  cmtbone::comm::run(1, [](Comm& world) {
    Nekbone nb(world, small_config(6, 2));
    std::vector<double> b(nb.points()), x(nb.points(), 0.0);
    nb.assemble_rhs([](double xx, double, double) {
      return std::sin(2 * M_PI * xx);
    }, std::span<double>(b));
    auto loose = nb.solve_cg(std::span<double>(x), b, 3, 0.0);
    double r3 = loose.residual;
    std::fill(x.begin(), x.end(), 0.0);
    auto tight = nb.solve_cg(std::span<double>(x), b, 50, 0.0);
    EXPECT_LT(tight.residual, r3);
    EXPECT_EQ(loose.iterations, 3);
  });
}

TEST(Nekbone, ParallelSolveMatchesSerialSolve) {
  NekboneConfig cfg = small_config(5, 2);
  cfg.h2 = 1.0;
  auto forcing = [](double x, double y, double) {
    return std::cos(2 * M_PI * x) + std::sin(2 * M_PI * y);
  };
  double serial_norm = 0.0;
  cmtbone::comm::run(1, [&](Comm& world) {
    Nekbone nb(world, cfg);
    std::vector<double> b(nb.points()), x(nb.points(), 0.0);
    nb.assemble_rhs(forcing, std::span<double>(b));
    nb.solve_cg(std::span<double>(x), b, 200, 1e-11);
    serial_norm = std::sqrt(nb.dot(x, x));
  });
  cmtbone::comm::run(4, [&](Comm& world) {
    NekboneConfig pcfg = cfg;
    Nekbone nb(world, pcfg);
    std::vector<double> b(nb.points()), x(nb.points(), 0.0);
    nb.assemble_rhs(forcing, std::span<double>(b));
    nb.solve_cg(std::span<double>(x), b, 200, 1e-11);
    double parallel_norm = std::sqrt(nb.dot(x, x));
    EXPECT_NEAR(parallel_norm, serial_norm, 1e-8 * std::max(serial_norm, 1.0));
  });
}

TEST(Nekbone, SolutionSatisfiesTheLinearSystem) {
  // After CG converges, A x must reproduce b to the solver tolerance.
  cmtbone::comm::run(2, [](Comm& world) {
    Nekbone nb(world, small_config(5, 2));
    std::vector<double> b(nb.points()), x(nb.points(), 0.0), ax(nb.points());
    nb.assemble_rhs([](double xx, double yy, double zz) {
      return std::sin(2 * M_PI * xx) * std::cos(2 * M_PI * yy) +
             std::sin(2 * M_PI * zz);
    }, std::span<double>(b));
    auto result = nb.solve_cg(std::span<double>(x), b, 300, 1e-11);
    EXPECT_LT(result.residual, 1e-10);
    nb.apply_ax(x, std::span<double>(ax));
    double err = 0, scale = 0;
    for (std::size_t i = 0; i < b.size(); ++i) {
      err = std::max(err, std::abs(ax[i] - b[i]));
      scale = std::max(scale, std::abs(b[i]));
    }
    EXPECT_LT(err, 1e-8 * std::max(scale, 1.0));
  });
}

TEST(Nekbone, DenseOperatorMatrixIsSymmetric) {
  // Assemble A column by column on a tiny problem (unit vector per unique
  // global dof, replicated across its local copies) and check A = A^T.
  cmtbone::comm::run(1, [](Comm& world) {
    NekboneConfig cfg = small_config(3, 2);
    Nekbone nb(world, cfg);
    cmtbone::mesh::BoxSpec spec;
    spec.n = cfg.n;
    spec.ex = spec.ey = spec.ez = cfg.ex;
    spec.px = spec.py = spec.pz = 1;
    cmtbone::mesh::Partition part(spec, 0);
    auto gids = cmtbone::mesh::global_gll_ids(part);

    std::vector<long long> unique(gids.begin(), gids.end());
    std::sort(unique.begin(), unique.end());
    unique.erase(std::unique(unique.begin(), unique.end()), unique.end());
    const int dofs = int(unique.size());

    std::vector<std::vector<double>> columns(dofs);
    std::vector<double> e(nb.points()), ae(nb.points());
    for (int c = 0; c < dofs; ++c) {
      for (std::size_t s = 0; s < gids.size(); ++s) {
        e[s] = gids[s] == unique[c] ? 1.0 : 0.0;  // continuous unit vector
      }
      nb.apply_ax(e, std::span<double>(ae));
      columns[c] = ae;
    }
    // A(r,c) via the weighted dot against unit vector r.
    std::vector<double> er(nb.points());
    for (int r = 0; r < dofs; ++r) {
      for (std::size_t s = 0; s < gids.size(); ++s) {
        er[s] = gids[s] == unique[r] ? 1.0 : 0.0;
      }
      for (int c = r + 1; c < dofs; ++c) {
        double a_rc = nb.dot(er, columns[c]);
        // Column r evaluated at row c:
        for (std::size_t s = 0; s < gids.size(); ++s) {
          er[s] = gids[s] == unique[c] ? 1.0 : 0.0;
        }
        double a_cr = nb.dot(er, columns[r]);
        ASSERT_NEAR(a_rc, a_cr, 1e-10 * std::max(1.0, std::abs(a_rc)))
            << "entry (" << r << "," << c << ")";
        for (std::size_t s = 0; s < gids.size(); ++s) {
          er[s] = gids[s] == unique[r] ? 1.0 : 0.0;
        }
      }
    }
  });
}

TEST(Nekbone, DotCountsSharedPointsOnce) {
  // <1, 1> weighted by inverse multiplicity equals the number of distinct
  // global points, independent of the partition.
  NekboneConfig cfg = small_config(4, 2);
  std::vector<double> counts;
  for (int p : {1, 2, 4}) {
    cmtbone::comm::run(p, [&](Comm& world) {
      Nekbone nb(world, cfg);
      std::vector<double> ones(nb.points(), 1.0);
      double count = nb.dot(ones, ones);
      // dot is a collective: every rank holds the same value, so only rank
      // 0 records it (rank threads run concurrently; a shared push_back
      // from every rank is a data race).
      if (world.rank() == 0) counts.push_back(count);
    });
  }
  // 2x2x2 elements of 4^3 points, periodic: (2*3)^3 distinct points.
  EXPECT_NEAR(counts[0], 216.0, 1e-9);
  for (double c : counts) EXPECT_NEAR(c, counts[0], 1e-9);
}

TEST(Nekbone, ProxyIterationRunsOnManyRanks) {
  cmtbone::comm::run(8, [](Comm& world) {
    NekboneConfig cfg = small_config(4, 2);
    Nekbone nb(world, cfg);
    for (int i = 0; i < 3; ++i) nb.proxy_iteration();
    SUCCEED();
  });
}

TEST(Nekbone, GsMethodDoesNotChangeTheSolve) {
  NekboneConfig cfg = small_config(5, 2);
  auto forcing = [](double x, double, double) {
    return std::sin(2 * M_PI * x);
  };
  std::vector<double> norms;
  for (auto m : {cmtbone::gs::Method::kPairwise,
                 cmtbone::gs::Method::kCrystalRouter,
                 cmtbone::gs::Method::kAllReduce}) {
    cmtbone::comm::run(2, [&](Comm& world) {
      NekboneConfig c = cfg;
      c.gs_method = m;
      Nekbone nb(world, c);
      std::vector<double> b(nb.points()), x(nb.points(), 0.0);
      nb.assemble_rhs(forcing, std::span<double>(b));
      nb.solve_cg(std::span<double>(x), b, 100, 1e-10);
      double norm = std::sqrt(nb.dot(x, x));
      if (world.rank() == 0) norms.push_back(norm);
    });
  }
  EXPECT_NEAR(norms[1], norms[0], 1e-8 * std::max(norms[0], 1.0));
  EXPECT_NEAR(norms[2], norms[0], 1e-8 * std::max(norms[0], 1.0));
}

TEST(Nekbone, MxmFixedVariantBitIdenticalStiffnessOperator) {
  // The stiffness operator routes its derivative contractions through the
  // gradient kernels; the fixed-N mxm dispatch must not change a single bit
  // of the result relative to the basic reference loops.
  cmtbone::comm::run(1, [](Comm& world) {
    NekboneConfig cfg = small_config(5, 2);
    cfg.variant = cmtbone::kernels::GradVariant::kBasic;
    Nekbone basic(world, cfg);
    cfg.variant = cmtbone::kernels::GradVariant::kMxmFixed;
    Nekbone fixed(world, cfg);

    std::vector<double> u(basic.points());
    basic.evaluate([](double x, double y, double z) {
      return std::sin(2 * M_PI * x) * std::cos(2 * M_PI * y) + z * z * x;
    }, std::span<double>(u));
    std::vector<double> au_basic(u.size()), au_fixed(u.size());
    basic.apply_ax(u, std::span<double>(au_basic));
    fixed.apply_ax(u, std::span<double>(au_fixed));
    for (std::size_t p = 0; p < u.size(); ++p) {
      ASSERT_EQ(au_basic[p], au_fixed[p]) << "point " << p;
    }
  });
}

}  // namespace
